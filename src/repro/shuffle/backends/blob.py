"""Blob shuffle backend: map output durable in a regional object store.

BlobShuffle-style (PAPERS.md): at the map barrier every map output is
PUT to the :class:`~repro.storage.blob.BlobStore` endpoint of its own
region, and reducers GET it back with coalesced per-region flows.  The
trade the backend exists to expose (ROADMAP item 2):

* **durability by construction** — the object store survives any
  executor loss, including every map-side executor at once.  Failure
  handling is pure metadata repair (re-register the durable objects at
  their endpoints), zero stage resubmissions, zero recomputation;
* **dollars for latency** — every request is metered (PUT per map
  output, GET per map output read) and priced by
  :class:`~repro.metrics.billing.BlobPricing` on top of the egress
  bill, and every request pays a seeded service latency.  Recovery cost
  is therefore *re-read dollars*: relaunched reducers simply re-GET.

Transient regional outages (the ``blob_outage`` chaos kind) delay
requests until the window closes — retried, never failed — and with
flow retries enabled the data flows themselves ride
``transfer_with_retry`` like every other backend.

Reads concatenate shards in global map-index order, so reduce input is
byte-identical to the fetch baseline (pinned by the equivalence suite).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Set, Tuple

from repro.shuffle.service import ShuffleBackend
from repro.storage.blob import BlobStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.rdd.dependencies import ShuffleDependency
    from repro.scheduler.task_runtime import TaskRuntime
    from repro.shuffle.map_output_tracker import MapStatus


class BlobShuffleBackend(ShuffleBackend):
    """Per-region object-store shuffle with request+egress pricing."""

    name = "blob"
    scheme_label = "BlobShuffle"
    implicit_transfers = False
    flow_tags = ("shuffle", "blob_put", "blob_get", "transfer_to")

    def __init__(self) -> None:
        super().__init__()
        self._store: BlobStore | None = None
        # Shuffles already written to the store (durable thereafter).
        self._uploaded: Set[int] = set()

    # ------------------------------------------------------------------
    # Store lifecycle
    # ------------------------------------------------------------------
    def _ensure_store(self) -> BlobStore:
        if self._store is None:
            self._store = BlobStore(
                self.context.topology,
                self.context.randomness.child("blob"),
            )
        return self._store

    def blob_store(self) -> BlobStore | None:
        return self._ensure_store() if self.context is not None else None

    def _wait_out_outage(self, region: str):
        """Transient-error loop: requests against a region inside its
        outage window retry (with the store's backoff) until it closes."""
        store = self._ensure_store()
        sim = self.context.sim
        remaining = store.outage_remaining(region, sim.now)
        while remaining > 0:
            store.transient_retries += 1
            yield sim.timeout(remaining + store.retry_backoff)
            remaining = store.outage_remaining(region, sim.now)

    # ------------------------------------------------------------------
    # Map barrier: PUT every map output to its region's endpoint
    # ------------------------------------------------------------------
    def prepare_shuffle_input(self, dep: ShuffleDependency, tenant: str = ""):
        if dep.shuffle_id in self._uploaded:
            return
        yield from self._upload(dep, recovery=False, tenant=tenant)

    def _upload(self, dep: ShuffleDependency, recovery: bool, tenant: str = ""):
        shuffle_id = dep.shuffle_id
        self._uploaded.add(shuffle_id)
        context = self.context
        topology = context.topology
        store = self._ensure_store()
        statuses = context.map_output_tracker.map_statuses(shuffle_id)

        # Latency draws happen here, in sorted status order, so the draw
        # sequence is a pure function of the seed and the layout.  Shards
        # are snapshotted *before* any yield: a map host dying mid-PUT
        # must not lose payloads the flows already carry.
        flows = []
        moves: List[Tuple[MapStatus, str, str, List[Any]]] = []
        latency = 0.0
        regions_touched: List[str] = []
        for status in statuses:
            key = (shuffle_id, status.map_index)
            existing = store.get_object(key)
            if recovery and existing is not None:
                continue  # still durable; nothing to re-write
            region = topology.datacenter_of(status.host)
            endpoint = store.endpoint_host(region)
            if region not in regions_touched:
                regions_touched.append(region)
            latency = max(latency, store.request_latency("put"))
            shards = [
                context.shuffle_store.get_shard(
                    shuffle_id, status.map_index, reduce_index
                )
                for reduce_index in range(len(status.shard_sizes))
            ]
            if status.host != endpoint and status.total_size > 0:
                flows.append(
                    context.fabric.transfer(
                        status.host, endpoint, status.total_size,
                        tag="blob_put", tenant=tenant,
                    )
                )
                self._account_flow(
                    status.host, endpoint, status.total_size,
                    shuffle_id=shuffle_id, recovery=recovery,
                )
            moves.append((status, region, endpoint, shards))
        for region in regions_touched:
            yield from self._wait_out_outage(region)
        if latency > 0:
            yield context.sim.timeout(latency)
        if flows:
            yield context.sim.all_of(flows)
        # Commit objects and relocate metadata only after every PUT
        # landed; reducers launch after this process returns.
        tracker = context.map_output_tracker
        for status, region, endpoint, shards in moves:
            store.put(
                region, (shuffle_id, status.map_index),
                shards, status.total_size,
            )
            self.counters.blob_puts += 1
            if status.host != endpoint or not tracker.has_map_output(
                shuffle_id, status.map_index
            ):
                # Relocation to the endpoint — or a restore, when the
                # map host died while its PUT was in flight.
                self.register_map_output(
                    shuffle_id, status.map_index, endpoint, shards
                )
                self.counters.map_outputs_registered -= 1  # not a new output

    # ------------------------------------------------------------------
    # Reduce-side GETs: coalesced per-endpoint flows
    # ------------------------------------------------------------------
    def shuffle_read(
        self, runtime: TaskRuntime, dep: ShuffleDependency, reduce_index: int
    ):
        """One coalesced flow per endpoint host; one metered GET per map
        output actually read.  Records concatenate in map-index order —
        byte-identical to the fetch baseline."""
        context = self.context
        store = self._ensure_store()
        statuses = context.map_output_tracker.map_statuses(dep.shuffle_id)
        self.counters.reduce_reads += 1
        records: List[Any] = []
        by_source: Dict[str, float] = {}
        gets = 0
        for status in statuses:
            shard = context.shuffle_store.get_shard(
                dep.shuffle_id, status.map_index, reduce_index
            )
            records.extend(shard.records)
            if shard.size_bytes > 0:
                gets += 1
                by_source[status.host] = (
                    by_source.get(status.host, 0.0) + shard.size_bytes
                )
        store.note_get(gets)
        self.counters.blob_gets += gets
        local_bytes = by_source.pop(runtime.host, 0.0)
        # Each batched request pays one service-latency draw; outage
        # windows at any touched endpoint region delay (never fail) it.
        latency = 0.0
        for source in sorted(by_source):
            region = context.topology.datacenter_of(source)
            yield from self._wait_out_outage(region)
            latency = max(latency, store.request_latency("get"))
        if latency > 0:
            yield context.sim.timeout(latency)
        flows = []
        retry_enabled = context.config.health.flow_retry_enabled
        for source in sorted(by_source):
            size = by_source[source]
            runtime.shuffle_bytes_fetched += size
            self.counters.blocks_fetched += 1
            if retry_enabled:
                flows.append(
                    context.sim.spawn(
                        self._fetch_with_retry(runtime, dep, source, size),
                        name=(
                            f"blob-get-retry:s{dep.shuffle_id}"
                            f"r{reduce_index}@{source}"
                        ),
                    )
                )
            else:
                flows.append(
                    context.fabric.transfer(
                        source, runtime.host, size, tag="blob_get",
                        tenant=runtime.tenant,
                    )
                )
                self._account_flow(
                    source, runtime.host, size, shuffle_id=dep.shuffle_id,
                    recovery=runtime.task.recovery,
                )
        if local_bytes > 0:
            yield context.sim.timeout(
                context.config.disk.read_time(local_bytes)
            )
            runtime.bytes_read_local += local_bytes
            self.counters.note_local_read(local_bytes)
        if flows:
            yield context.sim.all_of(flows)
        return records

    # ------------------------------------------------------------------
    # Failure handling: metadata repair from durable objects
    # ------------------------------------------------------------------
    def on_host_failure(self, host: str) -> None:
        """The object store outlives any executor.  ``fail_host``
        dropped the tracker/store entries registered at ``host``; every
        durable object re-registers at its endpoint synchronously, so
        reads continue with zero stage resubmissions — recovery cost is
        the re-read traffic the relaunched tasks pay, in dollars."""
        if self._store is None:
            return
        context = self.context
        tracker = context.map_output_tracker
        for obj in self._store.objects():
            shuffle_id, map_index = obj.key
            if not tracker.is_registered(shuffle_id):
                continue
            if tracker.has_map_output(shuffle_id, map_index):
                continue
            endpoint = self._store.endpoint_host(obj.region)
            self.register_map_output(
                shuffle_id, map_index, endpoint, obj.shards
            )
            self.counters.map_outputs_registered -= 1  # restore, not new

    def on_blocks_lost(self, dep: ShuffleDependency, tenant: str = ""):
        """Only reachable when a map output was lost *before* its PUT
        (the store had no copy): write the recomputed outputs durable,
        recovery-tagged."""
        self._uploaded.discard(dep.shuffle_id)
        yield from self._upload(dep, recovery=True, tenant=tenant)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def remove_shuffle(self, shuffle_id: int) -> None:
        super().remove_shuffle(shuffle_id)
        self._uploaded.discard(shuffle_id)
        if self._store is not None:
            self._store.drop_shuffle(shuffle_id)
