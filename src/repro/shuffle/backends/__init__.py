"""Backend registry: shuffle strategies addressable by name.

A backend registers once at import time; everything downstream —
``ShuffleConfig.backend``, the experiment scheme table, the CLI's
``--scheme`` choices, the benchmark matrices — enumerates this registry
instead of branching on strategy, so adding a shuffle strategy means
adding a module here (plus, if it should appear in the experiment
harness, one :class:`~repro.experiments.schemes.Scheme` member whose
value matches the backend's ``scheme_label``).
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import ConfigurationError
from repro.shuffle.service import ShuffleBackend
from repro.shuffle.backends.blob import BlobShuffleBackend
from repro.shuffle.backends.fetch import FetchShuffleBackend
from repro.shuffle.backends.pre_merge import PreMergeBackend
from repro.shuffle.backends.push_aggregate import PushAggregateBackend
from repro.shuffle.backends.remote import RemoteShuffleBackend

_REGISTRY: Dict[str, Type[ShuffleBackend]] = {}


def register_backend(backend_class: Type[ShuffleBackend]) -> Type[ShuffleBackend]:
    """Register a backend class under its ``name`` (usable as a
    decorator for out-of-tree strategies)."""
    name = backend_class.name
    if not name or name == ShuffleBackend.name:
        raise ConfigurationError(
            f"{backend_class.__name__} must define a backend name"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not backend_class:
        raise ConfigurationError(
            f"shuffle backend {name!r} already registered "
            f"({existing.__name__})"
        )
    _REGISTRY[name] = backend_class
    return backend_class


def backend_names() -> List[str]:
    """Registered backend names, in registration order."""
    return list(_REGISTRY)


def backend_class(name: str) -> Type[ShuffleBackend]:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown shuffle backend {name!r} (registered: {known})"
        ) from None


def create_backend(name: str) -> ShuffleBackend:
    """Instantiate a fresh backend (one per cluster context)."""
    return backend_class(name)()


# The built-in strategies.  Registration order is the enumeration order
# used by the scheme table and the CLI.
register_backend(FetchShuffleBackend)
register_backend(PushAggregateBackend)
register_backend(PreMergeBackend)
register_backend(RemoteShuffleBackend)
register_backend(BlobShuffleBackend)

__all__ = [
    "BlobShuffleBackend",
    "FetchShuffleBackend",
    "PushAggregateBackend",
    "PreMergeBackend",
    "RemoteShuffleBackend",
    "ShuffleBackend",
    "backend_class",
    "backend_names",
    "create_backend",
    "register_backend",
]
