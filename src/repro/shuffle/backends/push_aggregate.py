"""The paper's Push/Aggregate backend (``transferTo``, §IV).

``prepare_job`` embeds an implicit ``transfer_to`` before every shuffle
(the §IV-D rewrite previously hard-wired into the DAG scheduler behind
``ShuffleConfig.auto_aggregate``; the rewrite pass itself still lives in
:mod:`repro.core.transfer_injection`, which this backend subsumes and is
now the sole caller of).  Map output is pushed — streamed by receiver
tasks into the aggregator datacenter while mappers are still producing —
so the subsequent shuffle read is mostly datacenter-local.  The read and
staging machinery is the inherited base-class path: the push strategy
changes *where shuffle input lives*, not what reducers do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.transfer_injection import insert_transfers
from repro.shuffle.service import ShuffleBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.rdd.rdd import RDD


class PushAggregateBackend(ShuffleBackend):
    """Push/Aggregate: implicit ``transfer_to`` before every shuffle."""

    name = "push_aggregate"
    scheme_label = "AggShuffle"
    implicit_transfers = True
    flow_tags = ("shuffle", "transfer_to")

    def prepare_job(self, final_rdd: RDD) -> RDD:
        return insert_transfers(final_rdd)
