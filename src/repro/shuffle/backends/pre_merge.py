"""Pre-merge backend: consolidate map output per datacenter, then fetch.

A FuxiShuffle/Magnet-style middle ground between the fetch baseline and
the paper's full Push/Aggregate.  After a shuffle's map stage completes
(and before any reducer launches), each datacenter's scattered map
outputs are merged onto a single *merger host* — the host already
holding the most bytes of that shuffle inside the datacenter — using
cheap intra-datacenter flows.  The WAN hop then degenerates from the
bursty per-shard all-to-all of §II-B to **one coalesced flow per remote
datacenter per reducer**: the same bytes cross the WAN, but as few
large sequential transfers instead of ``maps x reducers`` tiny ones,
which matters under per-flow fair sharing and the cluster's WAN flow
cap.

Correctness: the merge relocates shards without touching their records,
and ``shuffle_read`` concatenates shards in global map-index order —
byte-identical reduce input (hence byte-identical job output) to the
fetch baseline; only time and traffic shape differ.  The
backend-equivalence suite in ``tests/shuffle`` pins this down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Set, Tuple

from repro.shuffle.service import ShuffleBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.rdd.dependencies import ShuffleDependency
    from repro.scheduler.task_runtime import TaskRuntime
    from repro.shuffle.map_output_tracker import MapStatus


class PreMergeBackend(ShuffleBackend):
    """Merge map outputs per-datacenter before the WAN hop."""

    name = "pre_merge"
    scheme_label = "PreMerge"
    implicit_transfers = False
    flow_tags = ("shuffle", "shuffle_merge", "transfer_to")

    def __init__(self) -> None:
        super().__init__()
        # Shuffles whose outputs were already consolidated; a shuffle is
        # merged at most once (iterative jobs reuse the merged layout).
        self._merged: Set[int] = set()
        # Most recent merger host per datacenter — the single point of
        # failure chaos "merger" events target.
        self._mergers: Dict[str, str] = {}
        # Shadow of the last *elected* merger per datacenter, surviving
        # ``on_host_failure`` (unlike ``_mergers``): a consolidation
        # that lands on a different host than last time is a merger
        # re-election, counted in HealthCounters.
        self._last_merger: Dict[str, str] = {}
        # Shuffles where a datacenter's merge was skipped for health
        # (blacklisted DC): their layout stays scattered there and reads
        # degrade to plain per-source fetches — the last-resort fallback.
        self._fallback: Set[int] = set()

    # ------------------------------------------------------------------
    # Pre-reduce consolidation
    # ------------------------------------------------------------------
    def prepare_shuffle_input(self, dep: ShuffleDependency, tenant: str = ""):
        if dep.shuffle_id in self._merged:
            return
        yield from self._consolidate(dep, recovery=False, tenant=tenant)

    def _choose_merger(
        self, datacenter: str, per_host: Dict[str, float]
    ) -> str | None:
        """The live host with the most of this shuffle's bytes.

        Candidates are sorted before picking, so the choice depends only
        on the byte distribution — never on dict/host-set iteration
        order — and stays reproducible across seeds when hosts have
        been removed mid-run.  Falls back to any live host of the
        datacenter when every data-holding host is gone; None when the
        datacenter has no live executor at all (leave data scattered).
        """
        executors = self.context.executors
        candidates = sorted(
            host for host in per_host if host in executors
        )
        if not candidates:
            candidates = sorted(
                host
                for host in self.context.topology.hosts_in(datacenter)
                if host in executors
            )
        if not candidates:
            return None
        # Prefer hosts the blacklist considers healthy; when every
        # candidate is excluded the unfiltered list stands (a merge onto
        # a suspect host still beats leaving the data scattered).
        blacklist = self.context.blacklist
        if blacklist.enabled:
            healthy = [
                host for host in candidates if not blacklist.is_excluded(host)
            ]
            if healthy:
                candidates = healthy
        return min(
            candidates, key=lambda host: (-per_host.get(host, 0.0), host)
        )

    def _consolidate(
        self, dep: ShuffleDependency, recovery: bool, tenant: str = ""
    ):
        shuffle_id = dep.shuffle_id
        self._merged.add(shuffle_id)
        context = self.context
        topology = context.topology
        statuses = context.map_output_tracker.map_statuses(shuffle_id)

        by_dc: Dict[str, List[MapStatus]] = {}
        for status in statuses:
            by_dc.setdefault(topology.datacenter_of(status.host), []).append(
                status
            )

        flows = []
        moves: List[Tuple[MapStatus, str]] = []
        for datacenter in sorted(by_dc):
            group = by_dc[datacenter]
            per_host: Dict[str, float] = {}
            for status in group:
                per_host[status.host] = (
                    per_host.get(status.host, 0.0) + status.total_size
                )
            if len(per_host) < 2 and not (
                recovery and len(per_host) == 1
            ):
                continue  # already co-located (or a single map)
            if context.blacklist.is_datacenter_excluded(datacenter):
                # The whole datacenter is suspect: funnelling its bytes
                # onto one member would concentrate risk, so leave the
                # layout scattered and let reads degrade to plain
                # per-source fetches (byte-identical output, fetch-shaped
                # traffic) — the last-resort fallback.
                if shuffle_id not in self._fallback:
                    self._fallback.add(shuffle_id)
                    context.health.fallback_activations += 1
                continue
            merger = self._choose_merger(datacenter, per_host)
            if merger is None:
                continue
            self._mergers[datacenter] = merger
            previous = self._last_merger.get(datacenter)
            if previous is not None and previous != merger:
                context.health.reelections += 1
            self._last_merger[datacenter] = merger
            if all(status.host == merger for status in group):
                continue  # recovery found everything already in place
            self.counters.merge_rounds += 1
            self.counters.merge_fan_in += len(group)
            for status in group:
                if status.host == merger:
                    continue
                moves.append((status, merger))
                if status.total_size > 0:
                    flows.append(
                        context.fabric.transfer(
                            status.host, merger, status.total_size,
                            tag="shuffle_merge", tenant=tenant,
                        )
                    )
                    self._account_flow(
                        status.host, merger, status.total_size,
                        shuffle_id=shuffle_id,
                        recovery=recovery,
                    )
        if flows:
            yield context.sim.all_of(flows)
        # Relocate metadata and payloads only after the flows finished:
        # reducers are not launched until this process returns, so no
        # read can observe a half-merged layout.
        for status, merger in moves:
            shards = [
                context.shuffle_store.get_shard(
                    shuffle_id, status.map_index, reduce_index
                )
                for reduce_index in range(len(status.shard_sizes))
            ]
            self.register_map_output(
                shuffle_id, status.map_index, merger, shards
            )
            self.counters.map_outputs_registered -= 1  # relocation, not new

    # ------------------------------------------------------------------
    # Coalesced reduce read
    # ------------------------------------------------------------------
    def shuffle_read(
        self, runtime: TaskRuntime, dep: ShuffleDependency, reduce_index: int
    ):
        """One flow per *source host* instead of one per shard.

        After the merge each datacenter exposes (at most) one source
        host, so a reducer opens at most one WAN flow per remote
        datacenter.  Records are concatenated in map-index order —
        exactly the fetch backend's order — so reduce input is
        byte-identical.
        """
        context = self.context
        statuses = context.map_output_tracker.map_statuses(dep.shuffle_id)
        store = context.shuffle_store
        self.counters.reduce_reads += 1
        records: List[Any] = []
        by_source: Dict[str, float] = {}
        for status in statuses:
            shard = store.get_shard(
                dep.shuffle_id, status.map_index, reduce_index
            )
            records.extend(shard.records)
            if shard.size_bytes > 0:
                by_source[status.host] = (
                    by_source.get(status.host, 0.0) + shard.size_bytes
                )
        local_bytes = by_source.pop(runtime.host, 0.0)
        flows = []
        retry_enabled = context.config.health.flow_retry_enabled
        for source in sorted(by_source):
            size = by_source[source]
            runtime.shuffle_bytes_fetched += size
            self.counters.blocks_fetched += 1
            if retry_enabled:
                flows.append(
                    context.sim.spawn(
                        self._fetch_with_retry(runtime, dep, source, size),
                        name=(
                            f"fetch-retry:s{dep.shuffle_id}"
                            f"r{reduce_index}@{source}"
                        ),
                    )
                )
            else:
                flows.append(
                    context.fabric.transfer(
                        source, runtime.host, size, tag="shuffle",
                        tenant=runtime.tenant,
                    )
                )
                self._account_flow(
                    source, runtime.host, size, shuffle_id=dep.shuffle_id,
                    recovery=runtime.task.recovery,
                )
        if local_bytes > 0:
            yield context.sim.timeout(
                context.config.disk.read_time(local_bytes)
            )
            runtime.bytes_read_local += local_bytes
            self.counters.note_local_read(local_bytes)
        if flows:
            yield context.sim.all_of(flows)
        return records

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def remove_shuffle(self, shuffle_id: int) -> None:
        super().remove_shuffle(shuffle_id)
        self._merged.discard(shuffle_id)
        self._fallback.discard(shuffle_id)

    def on_host_failure(self, host: str) -> None:
        """Re-run partitions register at new hosts; allow a re-merge so
        the recovered outputs are consolidated again before the next
        consuming stage."""
        self._merged.clear()
        for datacenter, merger in list(self._mergers.items()):
            if merger == host:
                del self._mergers[datacenter]

    def on_blocks_lost(self, dep: ShuffleDependency, tenant: str = ""):
        """Mid-job recovery: the lost partitions were just recomputed at
        scattered hosts — consolidate them onto a *surviving* merger
        before any reducer retries, so recovered reads stay coalesced.
        The merge flows are tagged as recovery traffic."""
        self._merged.discard(dep.shuffle_id)
        yield from self._consolidate(dep, recovery=True, tenant=tenant)

    def merger_host(self, datacenter: str) -> str | None:
        return self._mergers.get(datacenter)
