"""The paper's motivating examples (Fig. 1 and Fig. 2) on the fabric.

Setup (§III-A): two mapper workers A and B in one datacenter, reducers
in another; the inter-datacenter link has 1/4 the capacity of a
datacenter link.  Mapper A finishes at t=4, mapper B at t=8, and each
produces one unit of shuffle input (4 s to transfer alone over the WAN
link).  A 2-second scheduling gap separates a stage's completion from
the next stage's task launch.

* Fig. 1 — fetch: both transfers start when stage N+1 begins (t=10) and
  share the WAN link, finishing at t=18.  Push: each transfer starts
  the moment its mapper finishes (t=4 / t=8), runs alone, and finishes
  by t=12; the reducers start at t=14 instead of t=18.
* Fig. 2 — a reducer fails right after its first read.  Fetch must
  re-fetch the shuffle input across the WAN; push re-reads it inside
  the local datacenter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.network.fabric import NetworkFabric
from repro.network.topology import Topology
from repro.simulation.kernel import Simulator

# Abstract capacity units: the datacenter link moves 1 data unit per
# second; the WAN link 1/4 of that (the paper's "optimistic estimate").
_DC_CAPACITY = 1.0
_WAN_CAPACITY = 0.25
_MAP_OUTPUT_UNITS = 1.0
_MAP_FINISH_TIMES = (4.0, 8.0)
_SCHEDULING_GAP = 2.0
_REDUCE_DURATION = 4.0
_LOCAL_READ_DURATION = 0.5


@dataclass
class MotivationTimeline:
    """Event times of one simulated scenario."""

    transfer_starts: List[float]
    transfer_ends: List[float]
    reduce_start: float
    reduce_end: float

    @property
    def shuffle_input_ready(self) -> float:
        return max(self.transfer_ends)


def _build_fabric() -> Tuple[Simulator, NetworkFabric]:
    sim = Simulator()
    topology = Topology()
    topology.add_datacenter("dc-map")
    topology.add_datacenter("dc-reduce")
    for name in ("worker-a", "worker-b"):
        topology.add_host(
            name, "dc-map", access_bandwidth=_DC_CAPACITY, access_latency=0.0
        )
    topology.add_host(
        "reducer-host", "dc-reduce",
        access_bandwidth=_DC_CAPACITY, access_latency=0.0,
    )
    topology.connect_datacenters(
        "dc-map", "dc-reduce", _WAN_CAPACITY, latency=0.0
    )
    return sim, NetworkFabric(sim, topology)


def fetch_timeline() -> MotivationTimeline:
    """Fig. 1 (a): transfers start together when stage N+1 begins."""
    sim, fabric = _build_fabric()
    starts: List[float] = []
    ends: List[float] = []

    def scenario(sim):
        stage_start = max(_MAP_FINISH_TIMES) + _SCHEDULING_GAP
        yield sim.timeout(stage_start)
        flows = []
        for source in ("worker-a", "worker-b"):
            starts.append(sim.now)
            flows.append(
                fabric.transfer(
                    source, "reducer-host", _MAP_OUTPUT_UNITS, tag="shuffle"
                )
            )
        finished = yield sim.all_of(flows)
        for flow in finished:
            ends.append(flow.finished_at)
        yield sim.timeout(_REDUCE_DURATION)
        return sim.now

    reduce_end = sim.run_process(scenario(sim))
    return MotivationTimeline(
        transfer_starts=starts,
        transfer_ends=ends,
        reduce_start=max(ends),
        reduce_end=reduce_end,
    )


def push_timeline() -> MotivationTimeline:
    """Fig. 1 (b): each push starts the moment its mapper finishes."""
    sim, fabric = _build_fabric()
    starts: List[float] = []
    ends: List[float] = []

    def one_push(sim, source, ready_at):
        yield sim.timeout(ready_at)
        starts.append(sim.now)
        flow = yield fabric.transfer(
            source, "reducer-host", _MAP_OUTPUT_UNITS, tag="transfer_to"
        )
        ends.append(flow.finished_at)

    def scenario(sim):
        pushes = [
            sim.spawn(one_push(sim, source, ready))
            for source, ready in zip(
                ("worker-a", "worker-b"), _MAP_FINISH_TIMES
            )
        ]
        yield sim.all_of(pushes)
        # Reducers launch one scheduling gap after the data is in place.
        yield sim.timeout(_SCHEDULING_GAP)
        yield sim.timeout(_REDUCE_DURATION)
        return sim.now

    reduce_end = sim.run_process(scenario(sim))
    return MotivationTimeline(
        transfer_starts=sorted(starts),
        transfer_ends=sorted(ends),
        reduce_start=max(ends) + _SCHEDULING_GAP,
        reduce_end=reduce_end,
    )


@dataclass
class FailureRecovery:
    """Fig. 2: time to recover a failed reducer under each mechanism."""

    first_attempt_end: float
    recovery_read_seconds: float
    recovered_at: float


def fetch_failure_recovery() -> FailureRecovery:
    """Fig. 2 (a): the retry re-fetches shuffle input across the WAN."""
    sim, fabric = _build_fabric()

    def scenario(sim):
        yield sim.timeout(max(_MAP_FINISH_TIMES) + _SCHEDULING_GAP)
        yield fabric.transfer("worker-a", "reducer-host", _MAP_OUTPUT_UNITS)
        yield sim.timeout(_REDUCE_DURATION)  # the attempt that fails
        failed_at = sim.now
        refetch_start = sim.now
        yield fabric.transfer("worker-a", "reducer-host", _MAP_OUTPUT_UNITS)
        refetch_seconds = sim.now - refetch_start
        yield sim.timeout(_REDUCE_DURATION)
        return failed_at, refetch_seconds, sim.now

    failed_at, read_seconds, done = sim.run_process(scenario(sim))
    return FailureRecovery(failed_at, read_seconds, done)


def push_failure_recovery() -> FailureRecovery:
    """Fig. 2 (b): shuffle input already lives with the reducer."""
    sim, fabric = _build_fabric()

    def scenario(sim):
        yield sim.timeout(_MAP_FINISH_TIMES[0])
        yield fabric.transfer("worker-a", "reducer-host", _MAP_OUTPUT_UNITS)
        yield sim.timeout(_SCHEDULING_GAP)
        yield sim.timeout(_REDUCE_DURATION)  # the attempt that fails
        failed_at = sim.now
        # Recovery reads the locally stored shuffle input.
        yield sim.timeout(_LOCAL_READ_DURATION)
        read_seconds = sim.now - failed_at
        yield sim.timeout(_REDUCE_DURATION)
        return failed_at, read_seconds, sim.now

    failed_at, read_seconds, done = sim.run_process(scenario(sim))
    return FailureRecovery(failed_at, read_seconds, done)
