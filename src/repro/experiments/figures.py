"""Figure-level aggregation: the rows/series the paper's plots show.

Each function consumes :class:`~repro.experiments.runner.RunResult`
lists (typically produced by ``run_matrix``) and returns plain data
structures; the benchmark scripts format them as tables.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.experiments.runner import RunResult
from repro.experiments.schemes import Scheme
from repro.metrics.stats import SummaryStats, reduction_percent, summarize


def _group(
    results: Sequence[RunResult],
) -> Dict[Tuple[str, Scheme], List[RunResult]]:
    grouped: Dict[Tuple[str, Scheme], List[RunResult]] = defaultdict(list)
    for result in results:
        grouped[(result.workload, result.scheme)].append(result)
    return grouped


def fig7_job_completion_times(
    results: Sequence[RunResult],
) -> Dict[str, Dict[str, SummaryStats]]:
    """Fig. 7: per workload x scheme, the job-completion-time summary
    (10 %-trimmed mean bar, median dot, interquartile error bar)."""
    figure: Dict[str, Dict[str, SummaryStats]] = {}
    for (workload, scheme), cell in _group(results).items():
        figure.setdefault(workload, {})[scheme.value] = summarize(
            [run.duration for run in cell]
        )
    return figure


def fig8_cross_dc_traffic(
    results: Sequence[RunResult],
    workloads: Sequence[str] = ("Sort", "TeraSort", "PageRank", "NaiveBayes"),
) -> Dict[str, Dict[str, float]]:
    """Fig. 8: average cross-datacenter traffic (MB) per workload x scheme.

    The paper's Fig. 8 plots Sort, TeraSort, PageRank, and NaiveBayes;
    for Centralized the bars include the initial centralisation traffic
    ("the cross-region traffic to aggregate all data into the
    centralized datacenter").
    """
    figure: Dict[str, Dict[str, float]] = {}
    for (workload, scheme), cell in _group(results).items():
        if workload not in workloads:
            continue
        if scheme is Scheme.CENTRALIZED:
            # Paper semantics: the Centralized bar is the traffic needed
            # to aggregate all raw data into the central datacenter.
            mean = sum(
                run.cross_dc_by_tag.get("centralize", 0.0) for run in cell
            ) / len(cell)
        else:
            mean = sum(run.cross_dc_megabytes for run in cell) / len(cell)
        figure.setdefault(workload, {})[scheme.value] = mean
    return figure


def fig9_stage_breakdown(
    results: Sequence[RunResult],
) -> Dict[str, Dict[str, List[SummaryStats]]]:
    """Fig. 9: per workload x scheme, one SummaryStats per stage position.

    Stages are matched across seeds by their order of submission (stage
    ids are globally unique, so position is the stable key).
    """
    figure: Dict[str, Dict[str, List[SummaryStats]]] = {}
    for (workload, scheme), cell in _group(results).items():
        by_position: Dict[int, List[float]] = defaultdict(list)
        for run in cell:
            for position, stage in enumerate(run.stages):
                by_position[position].append(stage.duration)
        stages = [
            summarize(by_position[position])
            for position in sorted(by_position)
        ]
        figure.setdefault(workload, {})[scheme.value] = stages
    return figure


def headline_numbers(results: Sequence[RunResult]) -> Dict[str, Dict[str, float]]:
    """The §V summary: per workload, JCT and traffic reduction of
    AggShuffle relative to Spark (paper: 14-73 % JCT, 16-90 % traffic)."""
    jct = fig7_job_completion_times(results)
    headline: Dict[str, Dict[str, float]] = {}
    grouped = _group(results)
    for workload, by_scheme in jct.items():
        spark = by_scheme.get(Scheme.SPARK.value)
        agg = by_scheme.get(Scheme.AGGSHUFFLE.value)
        if spark is None or agg is None:
            continue
        entry: Dict[str, float] = {
            "jct_reduction_pct": reduction_percent(spark.trimmed, agg.trimmed),
            "spark_jct": spark.trimmed,
            "aggshuffle_jct": agg.trimmed,
            "spark_iqr": spark.iqr_width,
            "aggshuffle_iqr": agg.iqr_width,
        }
        spark_runs = grouped.get((workload, Scheme.SPARK), [])
        agg_runs = grouped.get((workload, Scheme.AGGSHUFFLE), [])
        if spark_runs and agg_runs:
            spark_traffic = sum(
                run.cross_dc_megabytes for run in spark_runs
            ) / len(spark_runs)
            agg_traffic = sum(
                run.cross_dc_megabytes for run in agg_runs
            ) / len(agg_runs)
            entry["traffic_reduction_pct"] = reduction_percent(
                spark_traffic, agg_traffic
            )
            entry["spark_traffic_mb"] = spark_traffic
            entry["aggshuffle_traffic_mb"] = agg_traffic
        headline[workload] = entry
    return headline
