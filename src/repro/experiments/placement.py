"""Input block placement across datacenters.

HDFS concentrates replicas near the writing client; the HiBench data
generators run from the master region, so raw input lands *skewed
toward the driver's datacenter* while still spreading over every region
(raw data "generated at geographically distributed datacenters").  The
placement below reproduces that: each block picks a datacenter by
weight (``hot_weight`` for the hot datacenter, 1 for each other) and a
round-robin host within it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.builder import ClusterSpec
from repro.simulation.random_source import RandomSource

DEFAULT_HOT_WEIGHT = 8.0


def skewed_block_placement(
    spec: ClusterSpec,
    randomness: RandomSource,
    num_blocks: int,
    hot_datacenter: Optional[str] = None,
    hot_weight: float = DEFAULT_HOT_WEIGHT,
) -> List[str]:
    """One host per block, weighted toward ``hot_datacenter``."""
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    if hot_weight < 1:
        raise ValueError("hot_weight must be >= 1")
    hot = hot_datacenter or spec.resolved_driver_datacenter
    datacenters = list(spec.datacenters)
    weights = [hot_weight if dc == hot else 1.0 for dc in datacenters]
    total = sum(weights)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)

    stream = randomness.stream("placement")
    next_host_index: Dict[str, int] = {dc: 0 for dc in datacenters}
    hosts: List[str] = []
    for _block in range(num_blocks):
        draw = stream.random()
        chosen = datacenters[-1]
        for dc, boundary in zip(datacenters, cumulative):
            if draw <= boundary:
                chosen = dc
                break
        index = next_host_index[chosen]
        next_host_index[chosen] = (index + 1) % spec.workers_per_datacenter
        hosts.append(f"{chosen}-w{index}")
    return hosts


def uniform_block_placement(spec: ClusterSpec, num_blocks: int) -> List[str]:
    """Strict round-robin over every worker of every datacenter."""
    workers = spec.worker_names()
    return [workers[index % len(workers)] for index in range(num_blocks)]


def single_datacenter_placement(
    spec: ClusterSpec, num_blocks: int, datacenter: str
) -> List[str]:
    """All blocks inside one datacenter (round-robin over its workers)."""
    return [
        f"{datacenter}-w{index % spec.workers_per_datacenter}"
        for index in range(num_blocks)
    ]
