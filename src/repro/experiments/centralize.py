"""The Centralized baseline's pre-processing phase.

"All raw data is sent to a single datacenter before being processed.
After all data is centralized within a cluster, Spark works within a
datacenter to process data" (§V-A).  The phase transfers every input
block that is outside the destination datacenter, concurrently, over
the simulated WAN — charging both time and cross-datacenter traffic —
then rewrites the DFS metadata so the job's map tasks find local
blocks.
"""

from __future__ import annotations

from typing import List

from repro.cluster.context import ClusterContext


def centralize_input(
    context: ClusterContext, path: str, destination_datacenter: str
) -> float:
    """Ship file ``path`` into one datacenter; returns elapsed seconds."""
    workers = context.workers_in(destination_datacenter)
    if not workers:
        raise ValueError(
            f"no workers in datacenter {destination_datacenter!r}"
        )
    start = context.sim.now
    process = context.sim.spawn(
        _centralize_process(context, path, destination_datacenter, workers),
        name=f"centralize:{path}",
    )
    context.sim.run_until_event(process)
    return context.sim.now - start


def _centralize_process(
    context: ClusterContext,
    path: str,
    destination_datacenter: str,
    workers: List[str],
):
    dfs = context.dfs
    topology = context.topology
    block_ids = dfs.file_blocks(path)

    new_partitions = []
    new_sizes = []
    new_hosts = []
    flows = []
    for index, block_id in enumerate(block_ids):
        source = dfs.block_locations(block_id)[0]
        block = dfs.read_block(block_id)
        target = workers[index % len(workers)]
        if topology.datacenter_of(source) != destination_datacenter:
            flows.append(
                context.fabric.transfer(
                    source, target, block.size_bytes, tag="centralize"
                )
            )
        else:
            target = source  # already local: leave the block in place
        new_partitions.append(block.records)
        new_sizes.append(block.size_bytes)
        new_hosts.append(target)
    if flows:
        yield context.sim.all_of(flows)

    dfs.delete_file(path)
    dfs.write_file(path, new_partitions, new_sizes, placement_hosts=new_hosts)
    return len(flows)
