"""Run (workload, scheme, seed) cells on the Fig. 6 cluster.

One *cell* = build a fresh simulated cluster, install the generated
input with the skewed block placement, optionally pre-process the input
(Centralized / Iridium-like schemes), run the workload's job, and
snapshot the metrics.

Seeding follows the paper's methodology ("10 iterative runs" of the
same benchmark): the dataset and its block placement are generated once
(``ExperimentPlan.fixed_data_seed``), while the per-run ``seed`` varies
only the environment — bandwidth jitter and injected failures — so the
reported spread is performance variation *over time*, not across
datasets.  Set ``fixed_data_seed=None`` to regenerate data per run
instead.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.builder import ClusterSpec, ec2_six_region_spec
from repro.cluster.context import ClusterContext
from repro.config import SimulationConfig
from repro.metrics.billing import bill_traffic, blob_request_dollars
from repro.experiments.placement import (
    DEFAULT_HOT_WEIGHT,
    skewed_block_placement,
)
from repro.experiments.schemes import Scheme, config_for_scheme, scheme_spec
from repro.simulation.random_source import RandomSource
from repro.workloads.base import Workload


@dataclass
class StageRecord:
    """One stage's span inside a run (Fig. 9 raw material)."""

    name: str
    kind: str
    started_at: float
    duration: float


@dataclass
class RunResult:
    """Everything measured about one cell."""

    workload: str
    scheme: Scheme
    seed: int
    duration: float
    job_duration: float
    centralize_duration: float
    cross_dc_megabytes: float
    total_megabytes: float
    cross_dc_by_tag: Dict[str, float]
    # Dollar cost of the run's inter-datacenter traffic (EC2-style
    # egress pricing; see repro.metrics.billing).
    cost_dollars: float = 0.0
    stages: List[StageRecord] = field(default_factory=list)
    injected_failures: int = 0
    action_result: Any = None
    # Substrate perf counters of the run's fabric (solver cost etc.;
    # see repro.metrics.perf) — regressions show up in every bench.
    fabric_perf: Dict[str, float] = field(default_factory=dict)
    # The shuffle backend that moved the data, plus its perf counters
    # (blocks pushed, WAN vs. intra-DC bytes, merge fan-in, ...).
    backend: str = ""
    shuffle_perf: Dict[str, float] = field(default_factory=dict)
    # Fault-injection surface: every injected per-attempt failure across
    # the cell (not just the measured job), straggler-slowed attempts,
    # chaos events that actually applied, and the recovery counters
    # (relaunches, resubmissions, recomputed tasks, speculation).
    injected_failures_total: int = 0
    straggler_hits: int = 0
    chaos_events_applied: int = 0
    recovery: Dict[str, int] = field(default_factory=dict)
    # Health-aware degradation counters (blacklist exclusions, breaker
    # trips, flow retries, re-elections; see repro.metrics.perf).
    health: Dict[str, float] = field(default_factory=dict)
    # Multi-tenant stream runs only (``ExperimentPlan.stream``): the
    # per-tenant report (JCT percentiles, makespan, attributed bytes;
    # see repro.metrics.tenants) and the stream-level outcome.
    tenants: Dict[str, Dict[str, float]] = field(default_factory=dict)
    stream: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ExperimentPlan:
    """Shared parameters of a figure's run matrix."""

    cluster: ClusterSpec = field(default_factory=ec2_six_region_spec)
    seeds: Sequence[int] = tuple(range(10))
    hot_weight: float = DEFAULT_HOT_WEIGHT
    base_config: Optional[SimulationConfig] = None
    keep_action_results: bool = False
    # Optional straggler model (repro.failures.StragglerModel); applied
    # to every task attempt's CPU charges.
    straggler_model: Any = None
    # Seed for data generation and block placement; None regenerates
    # them per run seed (see module docstring).
    fixed_data_seed: Optional[int] = 0
    # Multi-tenant job stream (repro.workloads.arrivals.StreamSpec).
    # When set, the cell runs the stream through the inter-job scheduler
    # instead of the single workload job; the single-job path is
    # untouched (byte-identical) when this stays None.
    stream: Any = None


# Cache of generated input, shared across schemes/seeds of one process.
_DATA_CACHE: Dict[Tuple[str, int], List[List[Any]]] = {}


def generated_input(workload: Workload, seed: int) -> List[List[Any]]:
    """Seed-deterministic input partitions, cached per (workload, seed)."""
    key = (workload.name, seed)
    if key not in _DATA_CACHE:
        _DATA_CACHE[key] = workload.generate(
            RandomSource(seed).child(f"data:{workload.name}")
        )
    return _DATA_CACHE[key]


def clear_data_cache() -> None:
    _DATA_CACHE.clear()


def run_workload_once(
    workload: Workload,
    scheme: Scheme,
    seed: int,
    plan: Optional[ExperimentPlan] = None,
) -> RunResult:
    """Execute one cell and return its measurements."""
    plan = plan if plan is not None else ExperimentPlan()
    config = config_for_scheme(scheme, workload.spec, seed, plan.base_config)
    context = ClusterContext(
        plan.cluster, config, straggler_model=plan.straggler_model
    )
    if plan.stream is not None:
        return _run_stream_cell(workload, scheme, seed, plan, context)

    data_seed = plan.fixed_data_seed if plan.fixed_data_seed is not None else seed
    partitions = generated_input(workload, data_seed)
    placement = skewed_block_placement(
        plan.cluster,
        RandomSource(data_seed).child(f"placement:{workload.name}"),
        num_blocks=len(partitions),
        hot_weight=plan.hot_weight,
    )
    workload.install(context, partitions, placement_hosts=placement)

    spec = scheme_spec(scheme)
    started = context.sim.now
    centralize_duration = 0.0
    if spec.preprocess is not None:
        centralize_duration = spec.preprocess(
            context, workload.input_path, plan.cluster
        )
    action_result = workload.run(context)
    duration = context.sim.now - started
    context.shutdown()

    job = context.metrics.job
    stages = [
        StageRecord(
            name=span.name,
            kind=span.kind,
            started_at=span.submitted_at,
            duration=span.duration,
        )
        for span in job.stages
    ]
    if spec.preprocess is not None and centralize_duration > 0:
        stages.insert(
            0,
            StageRecord(
                name=spec.preprocess_stage_name,
                kind="centralize",
                started_at=started,
                duration=centralize_duration,
            ),
        )
    shuffle_perf = context.shuffle_service.perf_snapshot()
    return RunResult(
        workload=workload.name,
        scheme=scheme,
        seed=seed,
        duration=duration,
        job_duration=job.duration,
        centralize_duration=centralize_duration,
        cross_dc_megabytes=context.traffic.cross_dc_megabytes,
        total_megabytes=context.traffic.total_bytes / 1e6,
        cross_dc_by_tag={
            tag: size / 1e6
            for tag, size in context.traffic.cross_dc_by_tag.items()
        },
        # Egress dollars plus object-store request dollars (zero for
        # backends that never touch the blob store).
        cost_dollars=(
            bill_traffic(context.traffic).total_dollars
            + blob_request_dollars(shuffle_perf)
        ),
        stages=stages,
        injected_failures=job.injected_failures,
        action_result=action_result if plan.keep_action_results else None,
        fabric_perf=context.fabric.perf_snapshot(),
        backend=context.shuffle_service.backend_name,
        shuffle_perf=shuffle_perf,
        injected_failures_total=context.failure_injector.total_injected,
        straggler_hits=context.failure_injector.stragglers_hit,
        chaos_events_applied=(
            context.chaos_injector.events_applied
            if context.chaos_injector is not None
            else 0
        ),
        recovery=context.recovery.as_dict(),
        health=context.health.as_dict(),
    )


def _run_stream_cell(
    workload: Workload,
    scheme: Scheme,
    seed: int,
    plan: ExperimentPlan,
    context: ClusterContext,
) -> RunResult:
    """One multi-tenant stream cell on an already-built context.

    The arrival schedule derives from the cell's run seed through the
    context's root RandomSource (named child stream), so identical seeds
    reproduce identical schedules in every harness — serial,
    per-cell-parallel, and sharded — and adding draws elsewhere never
    perturbs them.
    """
    from repro.scheduler.job_scheduler import run_stream
    from repro.workloads.arrivals import generate_arrivals

    stream_spec = plan.stream
    arrivals = generate_arrivals(
        stream_spec,
        plan.cluster.datacenters,
        context.randomness.child("stream"),
    )
    started = context.sim.now
    stream_result = run_stream(context, stream_spec, arrivals)
    duration = context.sim.now - started
    context.shutdown()
    # Reconciliation surface: the ledger's admission-time attribution
    # ("bytes"/"wan_bytes") next to the monitor's completion-time records
    # — equal once every flow has landed (property-tested, benchmarked).
    for name, row in stream_result.tenants.items():
        row["monitor_bytes"] = context.traffic.by_tenant.get(name, 0.0)
        row["monitor_wan_bytes"] = context.traffic.cross_dc_by_tenant.get(
            name, 0.0
        )
    shuffle_perf = context.shuffle_service.perf_snapshot()
    return RunResult(
        workload=f"stream:{stream_spec.policy}",
        scheme=scheme,
        seed=seed,
        duration=duration,
        job_duration=stream_result.duration,
        centralize_duration=0.0,
        cross_dc_megabytes=context.traffic.cross_dc_megabytes,
        total_megabytes=context.traffic.total_bytes / 1e6,
        cross_dc_by_tag={
            tag: size / 1e6
            for tag, size in context.traffic.cross_dc_by_tag.items()
        },
        cost_dollars=(
            bill_traffic(context.traffic).total_dollars
            + blob_request_dollars(shuffle_perf)
        ),
        backend=context.shuffle_service.backend_name,
        fabric_perf=context.fabric.perf_snapshot(),
        shuffle_perf=shuffle_perf,
        injected_failures_total=context.failure_injector.total_injected,
        straggler_hits=context.failure_injector.stragglers_hit,
        chaos_events_applied=(
            context.chaos_injector.events_applied
            if context.chaos_injector is not None
            else 0
        ),
        recovery=context.recovery.as_dict(),
        health=context.health.as_dict(),
        tenants=stream_result.tenants,
        stream={
            "policy": stream_result.policy,
            "jobs_submitted": stream_result.jobs_submitted,
            "jobs_completed": stream_result.jobs_completed,
            "jobs_failed": stream_result.jobs_failed,
            "arrival_span_s": (
                arrivals[-1].arrival_time if arrivals else 0.0
            ),
        },
    )


def run_matrix(
    workloads: Sequence[Workload],
    schemes: Sequence[Scheme],
    plan: Optional[ExperimentPlan] = None,
) -> List[RunResult]:
    """The full cross product: every workload x scheme x seed."""
    plan = plan if plan is not None else ExperimentPlan()
    results: List[RunResult] = []
    for workload in workloads:
        for scheme in schemes:
            for seed in plan.seeds:
                results.append(
                    run_workload_once(workload, scheme, seed, plan)
                )
    return results


# ---------------------------------------------------------------------------
# Parallel harness
# ---------------------------------------------------------------------------
def _run_cell(payload: Tuple[str, Scheme, int, ExperimentPlan]) -> RunResult:
    """Worker entry point: rebuild the workload by name and run one cell.

    Top-level so it pickles; the workload is reconstructed in the worker
    (workload objects hold closures that do not survive pickling).
    """
    from repro.workloads import workload_by_name

    workload_name, scheme, seed, plan = payload
    return run_workload_once(workload_by_name(workload_name), scheme, seed, plan)


def default_jobs() -> int:
    """Worker count from the ``REPRO_JOBS`` environment knob (0 = off)."""
    value = os.environ.get("REPRO_JOBS", "0")
    try:
        return int(value)
    except ValueError:
        raise SystemExit(
            f"REPRO_JOBS must be an integer, got {value!r}"
        ) from None


def run_matrix_parallel(
    workloads: Sequence[Workload],
    schemes: Sequence[Scheme],
    plan: Optional[ExperimentPlan] = None,
    jobs: Optional[int] = None,
) -> List[RunResult]:
    """:func:`run_matrix` fanned out over a process pool.

    Every cell is an independent, seeded, deterministic simulation, so
    the fan-out preserves results bit-for-bit: the returned list is in
    the same (workload, scheme, seed) order as the sequential path and
    every ``RunResult`` field is identical.  ``jobs`` <= 1 (or ``None``
    with ``REPRO_JOBS`` unset) falls back to the sequential runner.
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1:
        return run_matrix(workloads, schemes, plan)
    plan = plan if plan is not None else ExperimentPlan()
    cells = [
        (workload.name, scheme, seed, plan)
        for workload in workloads
        for scheme in schemes
        for seed in plan.seeds
    ]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_run_cell, cells))


# ---------------------------------------------------------------------------
# Sharded harness: contiguous cell shards + pre-filled dataset caches
# ---------------------------------------------------------------------------
def shard_map(
    items: Sequence[Any],
    shard_runner: Any,
    jobs: Optional[int] = None,
    shards: Optional[int] = None,
    initializer: Any = None,
    initargs: Tuple[Any, ...] = (),
) -> List[Any]:
    """Map a picklable per-shard function over contiguous slices of
    ``items`` in a process pool, preserving order.

    The generic core of :func:`run_matrix_sharded`, reused by the chaos
    campaign (:mod:`repro.failures.campaign`): ``shard_runner`` takes a
    contiguous sub-sequence of ``items`` and returns a list of results;
    the flattened output is therefore identical to
    ``shard_runner(items)`` run sequentially — which is exactly what
    happens when ``jobs`` <= 1 (or ``None`` with ``REPRO_JOBS`` unset).
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(items) <= 1:
        return list(shard_runner(items))
    if shards is None:
        shards = jobs
    shards = max(1, min(shards, len(items)))
    base_size, extra = divmod(len(items), shards)
    slices: List[Sequence[Any]] = []
    start = 0
    for index in range(shards):
        stop = start + base_size + (1 if index < extra else 0)
        slices.append(items[start:stop])
        start = stop
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return [
            result for shard in pool.map(shard_runner, slices) for result in shard
        ]


def _prefill_worker_cache(entries: Dict[Tuple[str, int], List[List[Any]]]) -> None:
    """Pool initializer: seed the worker's dataset cache.

    The parent generates every dataset the matrix needs exactly once and
    ships the cache to each worker at startup, so no worker ever pays
    dataset generation again — with per-cell fan-out each fresh worker
    regenerates the data for its first cell of every (workload, seed).
    """
    _DATA_CACHE.update(entries)


def _run_shard(
    shard: Sequence[Tuple[str, Scheme, int, ExperimentPlan]],
) -> List[RunResult]:
    """Worker entry point: run a contiguous slice of the cell list."""
    from repro.workloads import workload_by_name

    return [
        run_workload_once(workload_by_name(name), scheme, seed, plan)
        for name, scheme, seed, plan in shard
    ]


def _chaos_variants(
    plan: ExperimentPlan, chaos: Optional[Sequence[Any]]
) -> List[ExperimentPlan]:
    """Expand the optional chaos axis into per-schedule plan variants."""
    if chaos is None:
        return [plan]
    base = plan.base_config
    if base is None:
        base = SimulationConfig()
    return [
        replace(plan, base_config=base.with_chaos(schedule))
        for schedule in chaos
    ]


def run_matrix_sharded(
    workloads: Sequence[Workload],
    schemes: Sequence[Scheme],
    plan: Optional[ExperimentPlan] = None,
    jobs: Optional[int] = None,
    shards: Optional[int] = None,
    chaos: Optional[Sequence[Any]] = None,
) -> List[RunResult]:
    """:func:`run_matrix` over contiguous shards with shared data caches.

    Differences from :func:`run_matrix_parallel`:

    * the (workload x scheme [x chaos] x seed) cell list is split into
      ``shards`` **contiguous** slices (default: one per worker), so a
      worker amortises its process-local caches across a whole slice
      instead of paying one pickling round-trip per cell;
    * the parent pre-generates every dataset the matrix needs (via the
      same :func:`generated_input` cache) and ships the cache to each
      worker through the pool initializer — dataset generation runs
      exactly once per (workload, data seed) across the whole sweep;
    * an optional ``chaos`` axis (a sequence of
      :class:`~repro.failures.chaos.ChaosSchedule` or ``None`` entries)
      expands the matrix to seed x scheme x chaos without callers
      hand-rolling plan variants.

    Cells remain independent seeded simulations, so the output is
    byte-identical to the sequential runner, in the same
    workload -> scheme -> chaos -> seed order.  ``jobs`` <= 1 runs the
    expanded matrix sequentially (same order, same results).
    """
    plan = plan if plan is not None else ExperimentPlan()
    plans = _chaos_variants(plan, chaos)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1:
        return [
            run_workload_once(workload, scheme, seed, variant)
            for workload in workloads
            for scheme in schemes
            for variant in plans
            for seed in variant.seeds
        ]
    cells = [
        (workload.name, scheme, seed, variant)
        for workload in workloads
        for scheme in schemes
        for variant in plans
        for seed in variant.seeds
    ]
    if not cells:
        return []
    # Pre-generate every dataset once, in the parent.
    entries: Dict[Tuple[str, int], List[List[Any]]] = {}
    for workload in workloads:
        for variant in plans:
            if variant.stream is not None:
                continue  # stream cells generate no workload dataset
            data_seeds = (
                (variant.fixed_data_seed,)
                if variant.fixed_data_seed is not None
                else tuple(variant.seeds)
            )
            for data_seed in data_seeds:
                key = (workload.name, data_seed)
                if key not in entries:
                    entries[key] = generated_input(workload, data_seed)
    return shard_map(
        cells,
        _run_shard,
        jobs=jobs,
        shards=shards,
        initializer=_prefill_worker_cache,
        initargs=(entries,),
    )
