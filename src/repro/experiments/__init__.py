"""Experiment harness: everything needed to regenerate the paper's
tables and figures.

* :mod:`repro.experiments.schemes` — the scheme registry, enumerated
  from the registered shuffle backends: ``Spark`` (stock fetch-based
  shuffle), ``Centralized`` (ship all raw input to one datacenter
  first), ``AggShuffle`` (the paper's Push/Aggregate with implicit
  ``transfer_to``), plus the ``IridiumLike`` and ``PreMerge``
  extensions.
* :mod:`repro.experiments.runner` — run one (workload, scheme, seed)
  cell on the Fig. 6 cluster and collect metrics.
* :mod:`repro.experiments.figures` — Fig. 7 (job completion times),
  Fig. 8 (cross-datacenter traffic), Fig. 9 (stage breakdowns), and the
  §V headline numbers.
* :mod:`repro.experiments.motivation` — the Fig. 1 / Fig. 2 timing
  examples on the raw network fabric.
"""

from repro.experiments.schemes import (
    PAPER_SCHEMES,
    SCHEME_REGISTRY,
    Scheme,
    SchemeSpec,
    all_schemes,
    config_for_scheme,
    scheme_spec,
)
from repro.experiments.runner import (
    ExperimentPlan,
    RunResult,
    run_matrix,
    run_workload_once,
)
from repro.experiments.figures import (
    fig7_job_completion_times,
    fig8_cross_dc_traffic,
    fig9_stage_breakdown,
    headline_numbers,
)

__all__ = [
    "PAPER_SCHEMES",
    "SCHEME_REGISTRY",
    "Scheme",
    "SchemeSpec",
    "all_schemes",
    "scheme_spec",
    "config_for_scheme",
    "ExperimentPlan",
    "RunResult",
    "run_workload_once",
    "run_matrix",
    "fig7_job_completion_times",
    "fig8_cross_dc_traffic",
    "fig9_stage_breakdown",
    "headline_numbers",
]
