"""An Iridium-style input-redistribution baseline (extension).

Iridium (Pu et al., SIGCOMM 2015 — discussed in the paper's §VI)
improves wide-area jobs by *redistributing the input dataset* across
sites in proportion to their available WAN bandwidth before computation,
so no single site's uplink becomes the shuffle bottleneck.  The paper
positions Push/Aggregate as orthogonal to such input/task placement
work; this module provides a simplified Iridium-like scheme so the two
philosophies can be compared on the same workloads:

* compute a bandwidth score per datacenter (the bottleneck of its WAN
  gateway and the sum of its pair links);
* move input blocks so each datacenter holds a share of the input
  proportional to its score (lazily: only blocks that must move, cheapest
  donor first);
* run the job with the stock fetch-based shuffle.

On a homogeneous deployment (like Fig. 6) the scores are equal and the
scheme degenerates to uniform redistribution — which is exactly
Iridium's answer there.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.context import ClusterContext


def datacenter_bandwidth_scores(context: ClusterContext) -> Dict[str, float]:
    """A datacenter's capacity to serve shuffle traffic outward."""
    topology = context.topology
    scores: Dict[str, float] = {}
    for name, datacenter in topology.datacenters.items():
        pair_total = sum(
            link.capacity
            for link in topology.wan_links()
            if link.name.startswith(f"wan:{name}->")
        )
        if datacenter.wan_out is not None:
            score = min(datacenter.wan_out.capacity, pair_total)
        else:
            score = pair_total
        scores[name] = score
    return scores


def plan_redistribution(
    context: ClusterContext, path: str
) -> List[Tuple[str, str]]:
    """(block id, destination host) moves to reach proportional shares."""
    dfs = context.dfs
    topology = context.topology
    scores = datacenter_bandwidth_scores(context)
    total_score = sum(scores.values()) or 1.0

    block_ids = dfs.file_blocks(path)
    sizes = {block_id: dfs.block_size(block_id) for block_id in block_ids}
    total_bytes = sum(sizes.values())

    held: Dict[str, float] = {name: 0.0 for name in scores}
    blocks_by_dc: Dict[str, List[str]] = {name: [] for name in scores}
    for block_id in block_ids:
        dc = topology.datacenter_of(dfs.block_locations(block_id)[0])
        held[dc] += sizes[block_id]
        blocks_by_dc[dc].append(block_id)

    targets = {
        name: total_bytes * scores[name] / total_score for name in scores
    }
    moves: List[Tuple[str, str]] = []
    next_worker: Dict[str, int] = {name: 0 for name in scores}
    # Donors: over-target datacenters give their largest surplus first.
    for donor in sorted(scores, key=lambda n: held[n] - targets[n], reverse=True):
        surplus = held[donor] - targets[donor]
        if surplus <= 0:
            continue
        for block_id in list(blocks_by_dc[donor]):
            if surplus <= 0:
                break
            recipient = min(scores, key=lambda n: held[n] - targets[n])
            if held[recipient] >= targets[recipient]:
                break
            workers = context.workers_in(recipient)
            target_host = workers[next_worker[recipient] % len(workers)]
            next_worker[recipient] += 1
            moves.append((block_id, target_host))
            size = sizes[block_id]
            held[donor] -= size
            held[recipient] += size
            surplus -= size
            blocks_by_dc[donor].remove(block_id)
    return moves


def iridium_redistribute(context: ClusterContext, path: str) -> float:
    """Execute the planned input moves; returns elapsed seconds."""
    moves = plan_redistribution(context, path)
    if not moves:
        return 0.0
    start = context.sim.now
    process = context.sim.spawn(
        _redistribute_process(context, path, moves),
        name=f"iridium:{path}",
    )
    context.sim.run_until_event(process)
    return context.sim.now - start


def _redistribute_process(context, path, moves):
    dfs = context.dfs
    destinations = dict(moves)
    block_ids = dfs.file_blocks(path)
    new_partitions, new_sizes, new_hosts, flows = [], [], [], []
    for block_id in block_ids:
        block = dfs.read_block(block_id)
        source = dfs.block_locations(block_id)[0]
        target = destinations.get(block_id, source)
        if target != source:
            flows.append(
                context.fabric.transfer(
                    source, target, block.size_bytes, tag="redistribute"
                )
            )
        new_partitions.append(block.records)
        new_sizes.append(block.size_bytes)
        new_hosts.append(target)
    if flows:
        yield context.sim.all_of(flows)
    dfs.delete_file(path)
    dfs.write_file(path, new_partitions, new_sizes, placement_hosts=new_hosts)
    return len(flows)
