"""Evaluated schemes, driven by the shuffle-backend registry (§V-A).

A *scheme* is a named experiment configuration: which shuffle backend
moves the data, whether the scheme is part of the paper's evaluation,
and an optional input pre-processing phase that runs before the job.

* ``Scheme.SPARK`` — "the deployment of Spark across geo-distributed
  datacenters, without any optimization in terms of the wide-area
  network": the ``fetch`` backend, default locality scheduling.
* ``Scheme.CENTRALIZED`` — "all raw data is sent to a single datacenter
  before being processed"; the job itself then runs with stock Spark
  semantics (the ``fetch`` backend), mostly inside that datacenter.
* ``Scheme.AGGSHUFFLE`` — the paper's system: the ``push_aggregate``
  backend, Push/Aggregate with ``transfer_to()`` embedded implicitly
  before every shuffle ("only are the implicit transformations involved
  in the experiments, leaving the benchmark source code unchanged").
* ``Scheme.IRIDIUM`` — extension, not part of the paper's evaluation:
  an Iridium-style input-redistribution baseline over the ``fetch``
  backend (see :mod:`repro.experiments.iridium`).
* ``Scheme.PREMERGE`` — extension: the ``pre_merge`` backend, which
  consolidates map outputs per datacenter before the WAN hop.
* ``Scheme.REMOTE`` — extension: the ``remote`` backend, a dedicated
  shuffle-worker tier with adaptive replication (durability-first
  recovery instead of lineage).
* ``Scheme.BLOB`` — extension: the ``blob`` backend, a per-region
  object store where recovery cost is re-read dollars.

Backend-only schemes are *enumerated from the registry*: registering a
new :class:`~repro.shuffle.service.ShuffleBackend` (plus an enum member
whose value matches its ``scheme_label``) makes it appear in
``all_schemes()`` and the CLI ``--scheme`` choices automatically, with
no conditional branching here or in the runner.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, Optional, Tuple

from repro.config import (
    ShuffleConfig,
    SimulationConfig,
    shuffle_config_for_backend,
)
from repro.errors import ConfigurationError
from repro.shuffle.backends import backend_class, backend_names
from repro.workloads.specs import WorkloadSpec


class Scheme(enum.Enum):
    SPARK = "Spark"
    CENTRALIZED = "Centralized"
    AGGSHUFFLE = "AggShuffle"
    # Extensions, not part of the paper's evaluation.
    IRIDIUM = "IridiumLike"
    PREMERGE = "PreMerge"
    # Durability-first extensions (ROADMAP item 2): dedicated shuffle
    # workers with adaptive replication, and a per-region object store.
    REMOTE = "RemoteShuffle"
    BLOB = "BlobShuffle"


# A pre-processing phase: (context, input_path, cluster_spec) -> seconds.
PreprocessFn = Callable[..., float]


@dataclasses.dataclass(frozen=True)
class SchemeSpec:
    """How one scheme is realised: backend + optional preprocessing."""

    scheme: Scheme
    backend: str
    # Part of the paper's §V evaluation (Figs. 7-9)?
    paper: bool = False
    preprocess: Optional[PreprocessFn] = None
    # Stage name recorded for the preprocessing span (Fig. 9 material).
    preprocess_stage_name: str = ""


def _centralize(context, input_path: str, cluster_spec) -> float:
    from repro.experiments.centralize import centralize_input

    destination = cluster_spec.resolved_driver_datacenter
    return centralize_input(context, input_path, destination)


def _iridium(context, input_path: str, cluster_spec) -> float:
    from repro.experiments.iridium import iridium_redistribute

    return iridium_redistribute(context, input_path)


# Schemes that are more than a backend: a preprocessing pass over the
# plain fetch backend.  Everything else is enumerated from the registry.
_PREPROCESS_SPECS: Tuple[SchemeSpec, ...] = (
    SchemeSpec(
        scheme=Scheme.CENTRALIZED,
        backend="fetch",
        paper=True,
        preprocess=_centralize,
        preprocess_stage_name="centralize-input",
    ),
    SchemeSpec(
        scheme=Scheme.IRIDIUM,
        backend="fetch",
        paper=False,
        preprocess=_iridium,
        preprocess_stage_name="redistribute-input",
    ),
)

# Backend scheme_labels whose plain (no-preprocess) scheme is evaluated
# in the paper.
_PAPER_BACKEND_LABELS = frozenset({"Spark", "AggShuffle"})


def _build_registry() -> Dict[Scheme, SchemeSpec]:
    registry: Dict[Scheme, SchemeSpec] = {}
    for name in backend_names():
        label = backend_class(name).scheme_label
        try:
            scheme = Scheme(label)
        except ValueError:
            raise ConfigurationError(
                f"shuffle backend {name!r} advertises scheme label "
                f"{label!r}, which has no Scheme enum member"
            ) from None
        registry[scheme] = SchemeSpec(
            scheme=scheme,
            backend=name,
            paper=label in _PAPER_BACKEND_LABELS,
        )
    for spec in _PREPROCESS_SPECS:
        if spec.backend not in backend_names():
            raise ConfigurationError(
                f"scheme {spec.scheme.value!r} references unregistered "
                f"backend {spec.backend!r}"
            )
        registry[spec.scheme] = spec
    # Deterministic enum-declaration order, whatever order backends
    # registered in.
    return {scheme: registry[scheme] for scheme in Scheme if scheme in registry}


SCHEME_REGISTRY: Dict[Scheme, SchemeSpec] = _build_registry()

# The paper's evaluated systems, in presentation order (Figs. 7-9).
PAPER_SCHEMES: Tuple[Scheme, ...] = tuple(
    scheme for scheme, spec in SCHEME_REGISTRY.items() if spec.paper
)


def all_schemes() -> Tuple[Scheme, ...]:
    """Every runnable scheme, in enum-declaration order."""
    return tuple(SCHEME_REGISTRY)


def scheme_spec(scheme: Scheme) -> SchemeSpec:
    """The registry entry for ``scheme``."""
    try:
        return SCHEME_REGISTRY[scheme]
    except KeyError:
        raise ConfigurationError(
            f"scheme {scheme.value!r} is not registered"
        ) from None


def config_for_scheme(
    scheme: Scheme,
    workload_spec: WorkloadSpec,
    seed: int,
    base: SimulationConfig | None = None,
) -> SimulationConfig:
    """Build the per-run configuration for one scheme.

    The same seed drives bandwidth jitter and failure draws in every
    scheme, so compared runs see identical network weather.  The
    workload's CPU rate (text parsing vs. binary records) is applied to
    the cost model, and the scheme's registered shuffle backend to the
    shuffle configuration.
    """
    config = base if base is not None else SimulationConfig()
    cost = dataclasses.replace(
        config.cost, cpu_bytes_per_second=workload_spec.cpu_bytes_per_second
    )
    shuffle: ShuffleConfig = shuffle_config_for_backend(
        scheme_spec(scheme).backend
    )
    return dataclasses.replace(
        config, seed=seed, cost=cost, shuffle=shuffle
    )
