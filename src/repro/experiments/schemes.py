"""The three evaluated systems (paper §V-A "Baselines").

* ``Scheme.SPARK`` — "the deployment of Spark across geo-distributed
  datacenters, without any optimization in terms of the wide-area
  network": fetch-based shuffle, default locality scheduling.
* ``Scheme.CENTRALIZED`` — "all raw data is sent to a single datacenter
  before being processed"; the job itself then runs with stock Spark
  semantics, mostly inside that datacenter.
* ``Scheme.AGGSHUFFLE`` — the paper's system: Push/Aggregate with
  ``transfer_to()`` embedded implicitly before every shuffle
  ("only are the implicit transformations involved in the experiments,
  leaving the benchmark source code unchanged").
"""

from __future__ import annotations

import dataclasses
import enum

from repro.config import ShuffleConfig, SimulationConfig
from repro.workloads.specs import WorkloadSpec


class Scheme(enum.Enum):
    SPARK = "Spark"
    CENTRALIZED = "Centralized"
    AGGSHUFFLE = "AggShuffle"
    # Extension, not part of the paper's evaluation: an Iridium-style
    # input-redistribution baseline (see repro.experiments.iridium).
    IRIDIUM = "IridiumLike"


PAPER_SCHEMES = (Scheme.SPARK, Scheme.CENTRALIZED, Scheme.AGGSHUFFLE)


def config_for_scheme(
    scheme: Scheme,
    workload_spec: WorkloadSpec,
    seed: int,
    base: SimulationConfig | None = None,
) -> SimulationConfig:
    """Build the per-run configuration for one scheme.

    The same seed drives bandwidth jitter and failure draws in every
    scheme, so compared runs see identical network weather.  The
    workload's CPU rate (text parsing vs. binary records) is applied to
    the cost model.
    """
    config = base if base is not None else SimulationConfig()
    cost = dataclasses.replace(
        config.cost, cpu_bytes_per_second=workload_spec.cpu_bytes_per_second
    )
    if scheme is Scheme.AGGSHUFFLE:
        shuffle = ShuffleConfig(push_based=True, auto_aggregate=True)
    else:
        shuffle = ShuffleConfig(push_based=False, auto_aggregate=False)
    return dataclasses.replace(
        config, seed=seed, cost=cost, shuffle=shuffle
    )
