"""The paper's core contribution, as a library.

* :mod:`repro.core.analysis` — the §III-B analytical model: per-reducer
  cross-datacenter fetch volume (Eq. (1)), the job-level lower bound
  ``S - s1`` (Eq. (2)), and the optimal aggregator choice they imply.
* :mod:`repro.core.aggregation` — runtime aggregator-datacenter
  selection for a stage (§IV-D: the datacenter storing the largest
  amount of map input), including the k-subset extension.
* :mod:`repro.core.transfer_injection` — the implicit embedding of
  ``transfer_to()`` before every shuffle (§IV-D's modified DAGScheduler,
  enabled by ``spark.shuffle.aggregation`` — here
  ``ShuffleConfig.auto_aggregate``).

The user-facing ``transfer_to()`` transformation itself lives on
:class:`~repro.rdd.rdd.RDD`; this package hosts the decision logic.
"""

from repro.core.analysis import (
    cross_dc_traffic_lower_bound,
    optimal_reducer_datacenter,
    reducer_fetch_volume,
    total_fetch_volume,
)
from repro.core.aggregation import (
    select_aggregator_datacenters,
    stage_input_bytes_by_datacenter,
)
from repro.core.transfer_injection import insert_transfers

__all__ = [
    "reducer_fetch_volume",
    "total_fetch_volume",
    "cross_dc_traffic_lower_bound",
    "optimal_reducer_datacenter",
    "stage_input_bytes_by_datacenter",
    "select_aggregator_datacenters",
    "insert_transfers",
]
