"""Runtime selection of aggregator datacenters (paper §IV-D).

The destination of an implicit (or destination-less explicit)
``transfer_to`` is "the datacenter storing the largest amount of map
input, which is a known piece of information ... at the beginning of the
map task".  We therefore resolve destinations when the *producer* stage
is submitted, from the distribution of that stage's input:

* DFS blocks for input RDDs (first replica's datacenter),
* registered map outputs for upstream shuffles (all parent shuffle
  stages have completed by submission time),
* cached partition locations for cached RDDs.

``select_aggregator_datacenters`` also supports the k-subset extension
(aggregate into the k largest holders instead of exactly one).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Set

from repro.errors import SchedulerError
from repro.rdd.dependencies import ShuffleDependency, TransferDependency
from repro.rdd.rdd import RDD, HadoopRDD

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.context import ClusterContext
    from repro.scheduler.stage import Stage


def stage_input_bytes_by_datacenter(
    stage: Stage, context: ClusterContext
) -> Dict[str, float]:
    """Logical input bytes of a stage, aggregated per datacenter."""
    topology = context.topology
    by_dc: Dict[str, float] = {name: 0.0 for name in topology.datacenters}
    visited: Set[int] = set()

    def visit(rdd: RDD) -> None:
        if rdd.rdd_id in visited:
            return
        visited.add(rdd.rdd_id)
        if rdd.cached:
            cached_any = False
            for partition in range(rdd.num_partitions):
                entry = context.cache.lookup(rdd.rdd_id, partition)
                if entry is not None:
                    dc = topology.datacenter_of(entry.host)
                    by_dc[dc] = by_dc.get(dc, 0.0) + entry.size_bytes
                    cached_any = True
            if cached_any:
                return  # cached data is this branch's effective input
        if isinstance(rdd, HadoopRDD):
            for partition in range(rdd.num_partitions):
                block_id = rdd.block_id(partition)
                locations = context.dfs.block_locations(block_id)
                if not locations:
                    # Every replica died (re-election after an outage
                    # sizes against live state); the read path raises
                    # its own BlockNotFoundError if it is truly needed.
                    continue
                size = context.dfs.block_size(block_id)
                dc = topology.datacenter_of(locations[0])
                by_dc[dc] = by_dc.get(dc, 0.0) + size
            return
        for dep in rdd.dependencies:
            if isinstance(dep, ShuffleDependency):
                tracker = context.map_output_tracker
                if tracker.is_complete(dep.shuffle_id):
                    host_to_dc = {
                        host: topology.datacenter_of(host)
                        for host in topology.all_host_names()
                    }
                    for dc, size in tracker.total_output_by_datacenter(
                        dep.shuffle_id, host_to_dc
                    ).items():
                        by_dc[dc] = by_dc.get(dc, 0.0) + size
            elif isinstance(dep, TransferDependency):
                staged = context.transfer_tracker
                for partition in range(dep.parent.num_partitions):
                    entry = staged.try_get(dep.transfer_id, partition)
                    if entry is not None:
                        dc = topology.datacenter_of(entry.host)
                        by_dc[dc] = by_dc.get(dc, 0.0) + entry.size_bytes
            else:
                visit(dep.parent)

    visit(stage.rdd)
    return by_dc


def select_aggregator_datacenters(
    stage: Stage,
    context: ClusterContext,
    subset_size: int = 1,
    exclude: Sequence[str] = (),
) -> List[str]:
    """The ``subset_size`` datacenters holding the most stage input.

    Deterministic: sorted by (bytes descending, name ascending).
    ``exclude`` drops health-vetoed datacenters from the ranking (used
    by re-election after a blacklist/breaker verdict); when everything
    is excluded the unfiltered ranking stands — a suspect aggregator
    still beats no aggregator.  Falls back to the driver's datacenter
    when no input bytes are visible at all (e.g. a parallelized source).
    """
    if subset_size < 1:
        raise SchedulerError("subset_size must be >= 1")
    by_dc = stage_input_bytes_by_datacenter(stage, context)
    ranked = sorted(by_dc.items(), key=lambda item: (-item[1], item[0]))
    excluded = set(exclude)
    chosen = [
        dc for dc, size in ranked if size > 0 and dc not in excluded
    ][:subset_size]
    if not chosen:
        chosen = [dc for dc, size in ranked[:subset_size] if size > 0]
    if not chosen:
        chosen = [context.topology.datacenter_of(context.driver_host)]
    return chosen
