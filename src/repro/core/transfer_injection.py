"""Implicit embedding of ``transfer_to`` before every shuffle (§IV-D).

This is the lineage-rewrite pass of the Push/Aggregate shuffle backend
(:class:`repro.shuffle.backends.push_aggregate.PushAggregateBackend`),
the analogue of setting ``spark.shuffle.aggregation=true``: the backend
calls :func:`insert_transfers` on the job's final RDD from its
``prepare_job`` hook, before the DAG scheduler builds stages.
Each shuffle dependency's parent is wrapped in a
:class:`~repro.rdd.transferred.TransferredRDD` with

* no explicit destination — it is resolved at producer-stage submission
  from the map-input distribution (§IV-D), and
* the shuffle's aggregator as ``pre_combine`` whenever the shuffle
  combines map-side, so combining happens *before* the WAN push
  (§IV-C-3) and only combined data crosses datacenters.

The rewrite mutates dependency edges in place (the lineage above the
shuffle is untouched), is idempotent, and skips shuffles whose parent is
already a TransferredRDD — including explicit developer-placed ones,
which therefore take precedence, matching the paper's "developers know
better" discussion in §IV-E.
"""

from __future__ import annotations

from typing import Set

from repro.rdd.dependencies import ShuffleDependency
from repro.rdd.rdd import RDD
from repro.rdd.transferred import TransferredRDD


def insert_transfers(final_rdd: RDD) -> RDD:
    """Embed a transfer before every shuffle reachable from ``final_rdd``.

    Returns ``final_rdd`` (rewritten in place) for call chaining.
    """
    visited: Set[int] = set()

    def visit(rdd: RDD) -> None:
        if rdd.rdd_id in visited:
            return
        visited.add(rdd.rdd_id)
        for dep in rdd.dependencies:
            if isinstance(dep, ShuffleDependency) and not isinstance(
                dep.parent, TransferredRDD
            ):
                pre_combine = (
                    dep.aggregator if dep.map_side_combine else None
                )
                dep.parent = TransferredRDD(
                    dep.parent,
                    destination_datacenter=None,
                    pre_combine=pre_combine,
                )
            visit(dep.parent)

    visit(final_rdd)
    return final_rdd


def count_inserted_transfers(final_rdd: RDD) -> int:
    """How many shuffle parents are TransferredRDDs (for diagnostics)."""
    count = 0
    for rdd in final_rdd.lineage():
        for dep in rdd.dependencies:
            if isinstance(dep, ShuffleDependency) and isinstance(
                dep.parent, TransferredRDD
            ):
                count += 1
    return count
