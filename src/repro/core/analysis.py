"""The paper's §III-B analytical model of shuffle traffic.

Setting: shuffle input is spread over M datacenters with partition sizes
``s_1 >= s_2 >= ... >= s_M`` (total S), each partition divided into N
equal shards for N reducers.

* Eq. (1): a reducer placed in datacenter ``i`` fetches
  ``(S - s_i) / N`` bytes across datacenters, minimised by placing it in
  the datacenter holding the largest partition.
* Eq. (2): total cross-datacenter shuffle traffic is at least
  ``S - s_1``, with equality iff every reducer is placed in that
  datacenter.

Hence the two §III conclusions: reducers gravitate to the datacenter
with the largest shuffle-input fraction, and aggregating shuffle input
into few datacenters (raising ``s_1 / S``) shrinks the bound — to zero
when everything is aggregated into one datacenter.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def reducer_fetch_volume(
    sizes_by_dc: Mapping[str, float], reducer_dc: str, num_reducers: int
) -> float:
    """Eq. (1): cross-datacenter bytes fetched by one reducer.

    ``sizes_by_dc`` maps datacenter -> shuffle-input bytes stored there;
    the reducer sits in ``reducer_dc`` and takes a 1/N shard of every
    partition.
    """
    if num_reducers < 1:
        raise ValueError("num_reducers must be >= 1")
    _validate_sizes(sizes_by_dc)
    total = sum(sizes_by_dc.values())
    local = sizes_by_dc.get(reducer_dc, 0.0)
    return (total - local) / num_reducers


def total_fetch_volume(
    sizes_by_dc: Mapping[str, float],
    reducer_placement: Sequence[str],
) -> float:
    """Total cross-datacenter traffic for a concrete reducer placement.

    ``reducer_placement[k]`` is the datacenter of reducer ``k``; shards
    are the equal-size 1/N fractions of the model.
    """
    num_reducers = len(reducer_placement)
    if num_reducers == 0:
        raise ValueError("need at least one reducer")
    return sum(
        reducer_fetch_volume(sizes_by_dc, dc, num_reducers)
        for dc in reducer_placement
    )


def cross_dc_traffic_lower_bound(sizes_by_dc: Mapping[str, float]) -> float:
    """Eq. (2): the minimum total cross-datacenter shuffle traffic S - s1."""
    _validate_sizes(sizes_by_dc)
    if not sizes_by_dc:
        return 0.0
    total = sum(sizes_by_dc.values())
    return total - max(sizes_by_dc.values())


def optimal_reducer_datacenter(sizes_by_dc: Mapping[str, float]) -> str:
    """The datacenter achieving the Eq. (2) bound: the largest holder.

    Ties break lexicographically for determinism.
    """
    _validate_sizes(sizes_by_dc)
    if not sizes_by_dc:
        raise ValueError("no datacenters given")
    return min(sizes_by_dc, key=lambda dc: (-sizes_by_dc[dc], dc))


def aggregation_benefit(
    sizes_by_dc: Mapping[str, float], aggregated_fraction: float
) -> float:
    """Residual lower bound after aggregating ``aggregated_fraction`` of
    the shuffle input into the largest datacenter.

    Illustrates the second §III-C conclusion: pushing ``s1/S`` towards 1
    drives the bound towards 0.
    """
    if not 0 <= aggregated_fraction <= 1:
        raise ValueError("aggregated_fraction must be in [0, 1]")
    _validate_sizes(sizes_by_dc)
    total = sum(sizes_by_dc.values())
    if total == 0:
        return 0.0
    largest = max(sizes_by_dc.values())
    remainder = total - largest
    # Aggregation moves a fraction of the non-local input into DC 1.
    return remainder * (1 - aggregated_fraction)


def _validate_sizes(sizes_by_dc: Mapping[str, float]) -> None:
    for dc, size in sizes_by_dc.items():
        if size < 0:
            raise ValueError(f"negative shuffle input size for {dc!r}")


def shard_matrix(
    sizes_by_dc: Mapping[str, float], num_reducers: int
) -> Dict[str, float]:
    """Per-datacenter shard size (each of the N equal shards), a helper
    for tests visualising the §III-B model."""
    if num_reducers < 1:
        raise ValueError("num_reducers must be >= 1")
    return {dc: size / num_reducers for dc, size in sizes_by_dc.items()}
