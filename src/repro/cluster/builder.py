"""Topology construction, including the paper's EC2 deployment (Fig. 6).

The evaluation cluster: six regions — N. Virginia, N. California,
São Paulo, Frankfurt, Singapore, Sydney — four ``m3.large`` workers each,
plus the Spark master and HDFS namenode on two dedicated N. Virginia
instances.  Intra-region bandwidth is about 1 Gbps per instance pair;
inter-region capacity fluctuates between roughly 80 and 300 Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.network.topology import GBPS, MBPS, Topology

# Region names as in Fig. 6.
EC2_REGIONS = (
    "us-east-1",      # N. Virginia (master + namenode here)
    "us-west-1",      # N. California
    "sa-east-1",      # São Paulo
    "eu-central-1",   # Frankfurt
    "ap-southeast-1", # Singapore
    "ap-southeast-2", # Sydney
)

# Representative one-way propagation delays between regions (seconds),
# from public inter-region RTT measurements (half of typical RTT).
_DEFAULT_WAN_LATENCY = 0.08
_WAN_LATENCY: Dict[Tuple[str, str], float] = {
    ("us-east-1", "us-west-1"): 0.031,
    ("us-east-1", "sa-east-1"): 0.060,
    ("us-east-1", "eu-central-1"): 0.045,
    ("us-east-1", "ap-southeast-1"): 0.110,
    ("us-east-1", "ap-southeast-2"): 0.100,
    ("us-west-1", "sa-east-1"): 0.095,
    ("us-west-1", "eu-central-1"): 0.073,
    ("us-west-1", "ap-southeast-1"): 0.088,
    ("us-west-1", "ap-southeast-2"): 0.070,
    ("sa-east-1", "eu-central-1"): 0.105,
    ("sa-east-1", "ap-southeast-1"): 0.175,
    ("sa-east-1", "ap-southeast-2"): 0.160,
    ("eu-central-1", "ap-southeast-1"): 0.085,
    ("eu-central-1", "ap-southeast-2"): 0.145,
    ("ap-southeast-1", "ap-southeast-2"): 0.048,
}


def _wan_latency(src: str, dst: str) -> float:
    return _WAN_LATENCY.get(
        (src, dst), _WAN_LATENCY.get((dst, src), _DEFAULT_WAN_LATENCY)
    )


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of a simulated cluster."""

    datacenters: Tuple[str, ...]
    workers_per_datacenter: int = 4
    intra_dc_bandwidth: float = 1.0 * GBPS
    # Baseline WAN capacity; the jitter process perturbs it within the
    # configured [low, high] band at run time.
    inter_dc_bandwidth: float = 200 * MBPS
    # Shared per-region WAN border capacity (None disables gateways).
    gateway_bandwidth: Optional[float] = 150 * MBPS
    # Single-flow throughput bound over WAN paths (TCP over high RTT);
    # None (the default) disables the cap; enable it for ablations.
    wan_flow_cap: Optional[float] = None
    driver_datacenter: Optional[str] = None
    wan_latencies: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def validate(self) -> None:
        if len(self.datacenters) < 1:
            raise ConfigurationError("need at least one datacenter")
        if len(set(self.datacenters)) != len(self.datacenters):
            raise ConfigurationError("duplicate datacenter names")
        if self.workers_per_datacenter < 1:
            raise ConfigurationError("workers_per_datacenter must be >= 1")
        if self.driver_datacenter is not None and (
            self.driver_datacenter not in self.datacenters
        ):
            raise ConfigurationError(
                f"driver datacenter {self.driver_datacenter!r} unknown"
            )

    @property
    def resolved_driver_datacenter(self) -> str:
        return self.driver_datacenter or self.datacenters[0]

    def worker_names(self) -> List[str]:
        return [
            f"{dc}-w{index}"
            for dc in self.datacenters
            for index in range(self.workers_per_datacenter)
        ]

    @property
    def driver_host_name(self) -> str:
        return f"{self.resolved_driver_datacenter}-driver"


def ec2_six_region_spec(workers_per_datacenter: int = 4) -> ClusterSpec:
    """The Fig. 6 deployment: six EC2 regions, four workers each,
    master in N. Virginia."""
    return ClusterSpec(
        datacenters=EC2_REGIONS,
        workers_per_datacenter=workers_per_datacenter,
        driver_datacenter="us-east-1",
        wan_latencies=dict(_WAN_LATENCY),
    )


def build_topology(spec: ClusterSpec) -> Topology:
    """Materialise a :class:`Topology` from a spec.

    Adds one non-worker *driver* host in the driver datacenter (the
    dedicated master instance of the paper's deployment).
    """
    spec.validate()
    topology = Topology()
    for datacenter in spec.datacenters:
        topology.add_datacenter(datacenter)
        for index in range(spec.workers_per_datacenter):
            topology.add_host(
                f"{datacenter}-w{index}",
                datacenter,
                access_bandwidth=spec.intra_dc_bandwidth,
            )
    topology.add_host(
        spec.driver_host_name,
        spec.resolved_driver_datacenter,
        access_bandwidth=spec.intra_dc_bandwidth,
    )
    names = list(spec.datacenters)
    for i, src in enumerate(names):
        for dst in names[i + 1:]:
            latency = spec.wan_latencies.get(
                (src, dst),
                spec.wan_latencies.get((dst, src), _wan_latency(src, dst)),
            )
            topology.connect_datacenters(
                src, dst, spec.inter_dc_bandwidth, latency=latency
            )
    if spec.gateway_bandwidth is not None and len(spec.datacenters) > 1:
        for datacenter in spec.datacenters:
            topology.set_gateway(datacenter, spec.gateway_bandwidth)
    topology.validate()
    return topology


def two_datacenter_spec(
    workers_per_datacenter: int = 2,
    inter_dc_bandwidth: float = 100 * MBPS,
) -> ClusterSpec:
    """A minimal two-DC cluster used by tests and the motivation benches."""
    return ClusterSpec(
        datacenters=("dc-a", "dc-b"),
        workers_per_datacenter=workers_per_datacenter,
        inter_dc_bandwidth=inter_dc_bandwidth,
        driver_datacenter="dc-a",
    )
