"""Cluster assembly: the user-facing entry point.

:class:`~repro.cluster.context.ClusterContext` plays the role of a
``SparkContext``: it owns the simulator, network fabric, DFS, executors,
schedulers, trackers, and metrics for one simulated cluster, and exposes
``text_file`` / ``parallelize`` / job-running methods.

:mod:`repro.cluster.builder` provides topology construction helpers,
including the paper's six-region EC2 deployment (Fig. 6).
"""

from repro.cluster.builder import ClusterSpec, build_topology, ec2_six_region_spec
from repro.cluster.context import ClusterContext, JobHandle
from repro.cluster.broadcast import Broadcast, install_broadcast_support

# Broadcast variables (context.broadcast / rdd.map_with_broadcast).
install_broadcast_support()

__all__ = [
    "ClusterSpec",
    "build_topology",
    "ec2_six_region_spec",
    "ClusterContext",
    "JobHandle",
    "Broadcast",
]
