"""ClusterContext: the SparkContext of the simulated cluster.

Owns every runtime component for one simulated deployment and exposes the
user API:

* data ingestion — :meth:`write_input_file` + :meth:`text_file`, or
  :meth:`parallelize`;
* RDD actions are invoked *on RDDs* (``rdd.collect()``); they call back
  into :meth:`run_collect` etc., which spawn the DAG scheduler on the
  simulator and step it until the job finishes;
* the simulated clock keeps running across jobs, so iterative workloads
  and repeated measurements compose naturally.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.cluster.builder import ClusterSpec, build_topology
from repro.errors import ConfigurationError
from repro.failures.chaos import ChaosInjector
from repro.failures.health import BlacklistTracker, LinkHealthMonitor
from repro.failures.injector import FailureInjector
from repro.metrics.collectors import MetricsCollector
from repro.metrics.perf import HealthCounters, RecoveryCounters
from repro.network.fabric import NetworkFabric
from repro.network.jitter import BandwidthJitter
from repro.network.traffic_monitor import TrafficMonitor
from repro.rdd.rdd import RDD, HadoopRDD, ParallelizedRDD
from repro.rdd.size_estimator import SizeEstimator
from repro.scheduler.cache import CacheManager
from repro.scheduler.dag_scheduler import DAGScheduler
from repro.scheduler.task_runner import TaskRunner
from repro.scheduler.task_scheduler import Executor, TaskScheduler
from repro.shuffle.backends import create_backend
from repro.shuffle.map_output_tracker import MapOutputTracker
from repro.shuffle.service import ShuffleService
from repro.shuffle.stores import ShuffleStore, TransferTracker
from repro.simulation.kernel import Simulator
from repro.simulation.random_source import RandomSource
from repro.storage.hdfs import DistributedFileSystem


class ClusterContext:
    """A fully assembled simulated geo-distributed Spark cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        config: Optional[SimulationConfig] = None,
        straggler_model=None,
    ) -> None:
        self.spec = spec
        self.config = config if config is not None else SimulationConfig()
        self.config.validate()

        self.sim = Simulator(
            wall_deadline_seconds=self.config.max_wall_seconds
        )
        self.randomness = RandomSource(self.config.seed)
        self.topology = build_topology(spec)
        self.traffic = TrafficMonitor()
        self.fabric = NetworkFabric(
            self.sim,
            self.topology,
            monitor=self.traffic,
            wan_flow_cap=spec.wan_flow_cap,
        )
        self.driver_host = spec.driver_host_name

        worker_names = spec.worker_names()
        self.dfs = DistributedFileSystem(
            self.topology.all_host_names(),
            replication=self.config.dfs_replication,
            disk=self.config.disk,
        )
        self.estimator = SizeEstimator(scale_factor=self.config.scale_factor)
        self.cache = CacheManager()
        self.map_output_tracker = MapOutputTracker()
        self.shuffle_store = ShuffleStore()
        self.transfer_tracker = TransferTracker()
        # The pluggable shuffle data path: one backend per context,
        # selected by name (repro.shuffle.backends registry).
        self.shuffle_service = ShuffleService(
            self, create_backend(self.config.shuffle.backend_name)
        )
        self.metrics = MetricsCollector()
        self.recovery = RecoveryCounters()
        # Health-aware degradation (opt-in via config.health): the
        # placement blacklist and the per-WAN-pair circuit breakers,
        # both reporting into the shared HealthCounters.
        self.health = HealthCounters()
        self.blacklist = BlacklistTracker(
            self.config.health, self.health, self.topology, self.sim
        )
        self.link_health = LinkHealthMonitor(
            self.config.health, self.health, self.topology, self.fabric, self.sim
        )
        self.failure_injector = FailureInjector(
            self.config.failures,
            self.randomness.child("failures"),
            straggler_model=straggler_model,
        )

        self.executors: Dict[str, Executor] = {
            name: Executor(name, self.config.cores_per_host)
            for name in worker_names
        }
        runner = TaskRunner(self)
        self.task_scheduler = TaskScheduler(
            self.sim,
            self.topology,
            self.executors,
            self.config.scheduling,
            run_task=runner.run,
            blacklist=self.blacklist,
        )
        # Receiver (transferTo) tasks are I/O-bound: they stream pushed
        # map output, overlapping computation on the same workers (the
        # paper's transfers begin while mappers are still producing,
        # §IV-B).  They therefore run on a dedicated per-host transfer
        # service rather than competing for compute slots.
        self.transfer_executors: Dict[str, Executor] = {
            name: Executor(name, self.config.cores_per_host)
            for name in worker_names
        }
        self.transfer_scheduler = TaskScheduler(
            self.sim,
            self.topology,
            self.transfer_executors,
            self.config.scheduling,
            run_task=runner.run,
            blacklist=self.blacklist,
        )
        self.dag_scheduler = DAGScheduler(self)

        # Timed infrastructure faults: the injector process fires the
        # configured chaos schedule into this context as simulated time
        # passes (executor crashes, host/DC losses, WAN degradation).
        self.chaos_injector: Optional[ChaosInjector] = None
        if self.config.chaos is not None and self.config.chaos:
            self.chaos_injector = ChaosInjector(self, self.config.chaos)
            self.chaos_injector.start()

        self._jitter: Optional[BandwidthJitter] = None
        self._gateway_jitter: Optional[BandwidthJitter] = None
        if self.config.jitter is not None:
            self._jitter = BandwidthJitter(
                self.sim,
                self.fabric,
                self.topology.wan_links(),
                self.config.jitter,
                randomness=self.randomness.child("jitter"),
            )
            self._jitter.start()
            # Region gateways stay static: they model provisioned border
            # capacity, while the measured EC2 fluctuation (80-300 Mbps)
            # lives on the per-region-pair paths.  (A gateway jitter can
            # be added via BandwidthJitter(require_wan_flag=False).)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def default_parallelism(self) -> int:
        """One wave of cores in a single datacenter (paper §V-A sets
        the max parallelism of map and reduce to 8 = one region's cores)."""
        return self.spec.workers_per_datacenter * self.config.cores_per_host

    @property
    def total_cores(self) -> int:
        return sum(executor.cores for executor in self.executors.values())

    def workers_in(self, datacenter: str) -> List[str]:
        return [
            host
            for host in self.topology.hosts_in(datacenter)
            if host in self.executors
        ]

    # ------------------------------------------------------------------
    # Data ingestion
    # ------------------------------------------------------------------
    def write_input_file(
        self,
        path: str,
        partitions: Sequence[List[Any]],
        placement_hosts: Optional[Sequence[str]] = None,
    ) -> None:
        """Create a DFS file with one block per partition.

        By default blocks round-robin across every worker in every
        datacenter — raw data "generated at geographically distributed
        datacenters".  Pass ``placement_hosts`` to skew or pin placement.
        """
        if placement_hosts is None:
            placement_hosts = self.spec.worker_names()
        sizes = [self.estimator.estimate(records) for records in partitions]
        self.dfs.write_file(path, partitions, sizes, list(placement_hosts))

    def text_file(self, path: str) -> HadoopRDD:
        """An RDD over an existing DFS file, one partition per block."""
        return HadoopRDD(self, path)

    def parallelize(self, records: Sequence[Any], num_slices: int = 1) -> RDD:
        """Distribute driver-local data as an RDD."""
        return ParallelizedRDD(self, records, num_slices)

    # ------------------------------------------------------------------
    # Job execution (called by RDD actions)
    # ------------------------------------------------------------------
    def run_collect(self, rdd: RDD) -> List[Any]:
        return self._run(rdd, "collect")

    def run_count(self, rdd: RDD) -> int:
        return self._run(rdd, "count")

    def run_save(self, rdd: RDD, path: str) -> None:
        if not path:
            raise ConfigurationError("save path must be non-empty")
        return self._run(rdd, "save", save_path=path)

    def _run(self, rdd: RDD, action: str, save_path: Optional[str] = None):
        job = self.dag_scheduler.run_job(rdd, action, save_path=save_path)
        process = self.sim.spawn(job, name=f"job:{action}:{rdd.name}")
        return self.sim.run_until_event(process)

    # ------------------------------------------------------------------
    # Concurrent jobs (§IV-E: clusters are shared by multiple jobs)
    # ------------------------------------------------------------------
    def submit_job(
        self, rdd: RDD, action: str = "collect",
        save_path: Optional[str] = None,
        tenant: Optional[str] = None,
        allowed_hosts: Optional[frozenset] = None,
    ) -> JobHandle:
        """Start a job without blocking; returns a :class:`JobHandle`.

        Multiple submitted jobs share the cluster's executors, network,
        and trackers, contending for slots exactly as concurrent Spark
        jobs would.  Each job gets its own metrics collector.

        ``tenant`` attributes every flow the job issues (per-tenant WAN
        accounting and fair-share weighting); ``allowed_hosts`` confines
        its tasks to an executor-pool share granted by the inter-job
        scheduler.
        """
        metrics = MetricsCollector()
        scheduler = DAGScheduler(
            self, metrics=metrics, tenant=tenant, allowed_hosts=allowed_hosts
        )
        job = scheduler.run_job(rdd, action, save_path=save_path)
        process = self.sim.spawn(job, name=f"job:{action}:{rdd.name}")
        return JobHandle(self, process, metrics)

    def set_tenant_weight(self, tenant: str, weight: float) -> None:
        """Give ``tenant``'s flows a weighted max-min fair share."""
        self.fabric.set_tenant_weight(tenant, weight)

    def wait_all(self, handles: Sequence[JobHandle]) -> List[Any]:
        """Run the simulation until every handle's job completes."""
        return [handle.result() for handle in handles]

    # ------------------------------------------------------------------
    # Fault injection (chaos events and manual failures)
    # ------------------------------------------------------------------
    def crash_executor(self, host: str) -> int:
        """Crash the executor *process* on ``host``, keeping its storage.

        Models a Spark executor crash with the external shuffle service
        enabled: the host's compute and transfer slots vanish and every
        running attempt there is relaunched elsewhere, but shuffle
        output, staged partitions, cache entries, and DFS replicas all
        survive.  Safe mid-job.  Returns the number of relaunched
        attempts.
        """
        if host not in self.executors:
            raise ConfigurationError(f"unknown worker host {host!r}")
        if len(self.executors) <= 1:
            raise ConfigurationError(
                f"cannot crash {host!r}: it is the last live executor"
            )
        relaunched = self.task_scheduler.remove_executor(host)
        relaunched += self.transfer_scheduler.remove_executor(host)
        self.recovery.executor_crashes += 1
        self.recovery.tasks_relaunched += relaunched
        return relaunched

    def fail_host(self, host: str) -> Dict[str, int]:
        """Take a worker host down, losing everything it stored.

        Removes the executor (and transfer-service slots), its shuffle
        output (the owning shuffles become incomplete, so dependent
        reads raise FetchFailed and the DAG scheduler recomputes exactly
        the missing partitions from lineage), staged transfer
        partitions, cached RDD partitions, and DFS replicas.  Safe
        mid-job: running attempts on the host are relaunched elsewhere.
        Returns a summary of what was lost.  Input blocks whose last
        replica lived here are gone for good — reading them raises,
        like HDFS with dead datanodes.
        """
        if host not in self.executors:
            raise ConfigurationError(f"unknown worker host {host!r}")
        if len(self.executors) <= 1:
            raise ConfigurationError(
                f"cannot fail {host!r}: it is the last live executor"
            )
        relaunched = self.task_scheduler.remove_executor(host)
        relaunched += self.transfer_scheduler.remove_executor(host)
        self.recovery.hosts_lost += 1
        self.recovery.tasks_relaunched += relaunched
        lost_outputs = self.map_output_tracker.unregister_host(host)
        self.shuffle_store.remove_host(host)
        self.transfer_tracker.remove_host(host)
        self.shuffle_service.on_host_failure(host)
        cached_before = self.cache.entry_count
        self.cache.evict_host(host)
        lost_blocks = self.dfs.namenode.remove_host_replicas(host)
        for block_id in self.dfs.datanodes[host].block_ids():
            self.dfs.datanodes[host].remove(block_id)
        return {
            "map_outputs_lost": lost_outputs,
            "cached_partitions_lost": cached_before - self.cache.entry_count,
            "blocks_without_replicas": len(lost_blocks),
        }

    @property
    def live_workers(self) -> List[str]:
        return list(self.executors)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop background processes (jitter); the context stays readable."""
        if self._jitter is not None:
            self._jitter.stop()
        if self._gateway_jitter is not None:
            self._gateway_jitter.stop()


class JobHandle:
    """A concurrently running job: await its result, inspect its metrics."""

    def __init__(self, context: ClusterContext, process, metrics) -> None:
        self.context = context
        self.process = process
        self.metrics = metrics

    @property
    def done(self) -> bool:
        return self.process.triggered

    def result(self) -> Any:
        """Run the simulation until this job finishes; return its value."""
        if not self.process.triggered:
            self.context.sim.run_until_event(self.process)
        return self.process.value

    @property
    def duration(self) -> float:
        return self.metrics.job.duration
