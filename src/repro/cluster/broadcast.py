"""Broadcast variables: driver-published read-only data.

Spark's broadcast mechanism ships a value from the driver to every
executor that needs it, caching it per host so repeated tasks pay
nothing.  Iterative ML workloads (e.g. k-means centroids) re-broadcast
a small model every iteration — across datacenters this costs one WAN
transfer per *datacenter*, not per task, because our implementation
fetches from the nearest holder (driver first, then any same-DC host
that already has the value), mirroring Spark's BitTorrent-ish transport.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.context import ClusterContext
    from repro.scheduler.task_runtime import TaskRuntime

_broadcast_ids = itertools.count()


class Broadcast:
    """A read-only value published by the driver.

    Tasks access it through :meth:`TaskRuntime-aware fetch
    <repro.cluster.broadcast.Broadcast.fetch>`; plain ``.value`` reads
    are allowed anywhere but charge no simulated time (driver-side use).
    """

    def __init__(self, context: ClusterContext, value: Any) -> None:
        self.broadcast_id = next(_broadcast_ids)
        self.context = context
        self._value = value
        self.size_bytes = context.estimator.estimate([value])
        # Hosts that already hold the value (the driver always does).
        self._holders: List[str] = [context.driver_host]
        # host -> completion event of an in-progress fetch, so
        # concurrent tasks on one host share a single transfer (Spark
        # serialises this with a per-executor lock).
        self._in_flight: Dict[str, Any] = {}
        self.fetch_count = 0

    @property
    def value(self) -> Any:
        return self._value

    def holders(self) -> List[str]:
        return list(self._holders)

    def fetch(self, runtime: TaskRuntime):
        """Task-side access: charge the transfer on first use per host.

        A generator (like all runtime operations).  Fetches from a
        same-datacenter holder when one exists, otherwise from the
        nearest holder (the driver, typically), then registers this host
        as a holder.
        """
        self.fetch_count += 1
        host = runtime.host
        if host in self._holders:
            return self._value
        pending = self._in_flight.get(host)
        if pending is not None:
            yield pending  # another task on this host is fetching
            return self._value
        arrival = self.context.sim.event(name=f"broadcast:{host}")
        self._in_flight[host] = arrival
        topology = self.context.topology
        my_dc = topology.datacenter_of(host)
        same_dc = [
            holder for holder in self._holders
            if topology.datacenter_of(holder) == my_dc
        ]
        source = same_dc[0] if same_dc else self._holders[0]
        if self.size_bytes > 0:
            yield self.context.fabric.transfer(
                source, host, self.size_bytes, tag="broadcast",
                tenant=runtime.tenant,
            )
        self._holders.append(host)
        del self._in_flight[host]
        arrival.succeed(None)
        return self._value

    def destroy(self) -> None:
        """Release executor-side copies (driver keeps the value)."""
        self._holders = [self.context.driver_host]


class BroadcastMappedRDD:
    """Deferred import shim; the real class is created in install()."""


def install_broadcast_support() -> None:
    """Attach ``broadcast`` to ClusterContext, ``read_broadcast`` to
    TaskRuntime, and ``map_with_broadcast`` to RDD (idempotent)."""
    from repro.cluster.context import ClusterContext
    from repro.rdd.dependencies import NarrowDependency
    from repro.rdd.rdd import RDD
    from repro.scheduler.task_runtime import TaskRuntime

    def broadcast(self: ClusterContext, value: Any) -> Broadcast:
        """Publish a read-only value from the driver."""
        return Broadcast(self, value)

    def read_broadcast(self: TaskRuntime, broadcast_variable: Broadcast):
        result = yield from broadcast_variable.fetch(self)
        return result

    class _BroadcastMapped(RDD):
        """map over (record, broadcast value); the fetch is charged once
        per host, inside the task."""

        def __init__(self, parent: RDD, func, broadcast_variable) -> None:
            super().__init__(
                parent.context, [NarrowDependency(parent)],
                name="mapWithBroadcast",
            )
            self._parent = parent
            self._func = func
            self._broadcast = broadcast_variable

        @property
        def num_partitions(self) -> int:
            return self._parent.num_partitions

        def compute(self, index: int, runtime):
            records = yield from runtime.materialize(self._parent, index)
            value = yield from runtime.read_broadcast(self._broadcast)
            yield from runtime.charge_operator(self, records)
            return [self._func(record, value) for record in records]

        def preferred_locations(self, index: int):
            return self._parent.preferred_locations(index)

    def map_with_broadcast(self: RDD, func, broadcast_variable) -> RDD:
        """Apply ``func(record, broadcast.value)`` to every record.

        The broadcast value is fetched (and charged) once per host the
        stage touches, then served from the host-local copy.
        """
        return _BroadcastMapped(self, func, broadcast_variable)

    ClusterContext.broadcast = broadcast
    TaskRuntime.read_broadcast = read_broadcast
    RDD.map_with_broadcast = map_with_broadcast
    global BroadcastMappedRDD
    BroadcastMappedRDD = _BroadcastMapped
