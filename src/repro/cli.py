"""Command-line interface: run experiments without writing code.

Usage::

    python -m repro run <workload> [--scheme SCHEME] [--seed N]
    python -m repro compare <workload> [--seeds N]
    python -m repro fig7 | fig8 | headline [--seeds N] [--jobs N]
    python -m repro lineage <workload> [--scheme SCHEME]

Workloads: wordcount, sort, terasort, pagerank, naivebayes.
Schemes are enumerated from the scheme registry (spark, centralized,
aggshuffle, iridiumlike, premerge, plus any newly registered shuffle
backend).

``--jobs N`` fans the (workload x scheme x seed) matrix out over N
worker processes; cells are independent seeded simulations, so the
output is identical to a sequential run.  ``REPRO_JOBS`` sets the
default.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.figures import (
    fig7_job_completion_times,
    fig8_cross_dc_traffic,
    headline_numbers,
)
from repro.experiments.runner import (
    ExperimentPlan,
    run_matrix_parallel,
    run_workload_once,
)
from repro.experiments.schemes import PAPER_SCHEMES, Scheme, all_schemes
from repro.metrics.reporting import format_table
from repro.workloads import all_workloads, workload_by_name


def _scheme(name: str) -> Scheme:
    for scheme in all_schemes():
        if scheme.value.lower() == name.lower():
            return scheme
    choices = ", ".join(s.value.lower() for s in all_schemes())
    raise SystemExit(f"unknown scheme {name!r} (choose from: {choices})")


def _expand_chaos_specs(tokens: List[str], cluster) -> List[str]:
    """Expand ``random:<n>@<seed>`` and ``@artifact.json`` chaos tokens
    into plain event specs; other tokens pass through untouched.

    ``random:`` draws a seeded schedule from the weighted grammar over
    ``cluster``'s hosts/DCs/WAN pairs; ``@path`` replays the schedule of
    a campaign artifact.  Malformed tokens exit naming the token, like
    the rest of the grammar.
    """
    from repro.errors import ConfigurationError
    from repro.failures.campaign import load_artifact_schedule
    from repro.failures.grammar import (
        ChaosUniverse,
        GrammarConfig,
        parse_random_token,
        random_schedule,
        schedule_to_specs,
    )
    from repro.simulation.random_source import RandomSource

    expanded: List[str] = []
    for token in tokens:
        try:
            if token.startswith("random:"):
                events, seed = parse_random_token(token)
                schedule = random_schedule(
                    RandomSource(seed).child("cli:random"),
                    ChaosUniverse.from_spec(cluster),
                    GrammarConfig(events=events, window=(1.0, 30.0)),
                )
                expanded.extend(schedule_to_specs(schedule))
            elif token.startswith("@"):
                expanded.extend(
                    schedule_to_specs(load_artifact_schedule(token[1:]))
                )
            else:
                expanded.append(token)
        except ConfigurationError as error:
            raise SystemExit(str(error)) from None
    return expanded


def _plan(
    seeds: int,
    chaos_specs: Optional[List[str]] = None,
    health=None,
) -> ExperimentPlan:
    base_config = None
    if chaos_specs or health is not None:
        from repro.config import SimulationConfig
        from repro.errors import ConfigurationError
        from repro.failures.chaos import ChaosSchedule

        replication = 1
        schedule = None
        if chaos_specs:
            try:
                schedule = ChaosSchedule.from_specs(chaos_specs)
            except ConfigurationError as error:
                raise SystemExit(str(error)) from None
            # Storage-losing events need a second input replica, or
            # lineage recovery bottoms out at permanently lost blocks.
            if any(
                e.kind in ("host", "outage", "merger", "shuffle_worker")
                for e in schedule.events
            ):
                replication = 2
        base_config = SimulationConfig(dfs_replication=replication)
        if schedule is not None:
            base_config = base_config.with_chaos(schedule)
        if health is not None:
            base_config = base_config.with_health(health)
    return ExperimentPlan(seeds=tuple(range(seeds)), base_config=base_config)


def _maybe_sanitize(args: argparse.Namespace):
    """Install the runtime invariant sanitizer when ``--sanitize`` was
    given (must happen before the cluster is built: components capture
    the sanitizer at construction).  Also returns the sanitizer armed
    by ``REPRO_SANITIZE`` so env-enabled runs report their check
    counts too."""
    from repro.analysis import sanitizer as sanitizer_module

    if getattr(args, "sanitize", False):
        return sanitizer_module.enable()
    return sanitizer_module.get_sanitizer()


def _print_sanitize_report(sanitizer) -> None:
    if sanitizer is None:
        return
    counts = sanitizer.snapshot()
    print(
        "  sanitizer       : all invariants held — "
        + ", ".join(
            f"{name} x{count:.0f}" for name, count in sorted(counts.items())
        )
    )


def cmd_run(args: argparse.Namespace) -> int:
    sanitizer = _maybe_sanitize(args)
    workload = workload_by_name(args.workload)
    scheme = _scheme(args.scheme)
    if args.chaos:
        args.chaos = _expand_chaos_specs(args.chaos, ExperimentPlan().cluster)
    health = None
    if args.blacklist or args.flow_retry:
        from repro.config import HealthConfig

        health = HealthConfig(
            blacklist_enabled=args.blacklist,
            flow_retry_enabled=args.flow_retry,
            # Flow retry alone cannot dodge a sick path without the
            # breaker steering re-issues, so the flags travel together.
            breaker_enabled=args.flow_retry,
        )
    result = run_workload_once(
        workload, scheme, args.seed,
        _plan(1, chaos_specs=args.chaos, health=health),
    )
    print(f"{workload.name} / {scheme.value} (seed {args.seed})")
    print(f"  shuffle backend : {result.backend}")
    print(f"  completion time : {result.duration:9.1f} s")
    print(f"  cross-DC traffic: {result.cross_dc_megabytes:9.1f} MB")
    for tag, megabytes in sorted(result.cross_dc_by_tag.items()):
        print(f"    {tag:<12}: {megabytes:9.1f} MB")
    print("  stages:")
    for stage in result.stages:
        print(
            f"    t={stage.started_at:8.1f}  {stage.duration:8.1f} s  "
            f"{stage.kind}"
        )
    perf = result.fabric_perf
    if perf:
        print(
            "  fabric perf     : "
            f"{perf['solves']:.0f} solves, "
            f"{perf['flows_touched']:.0f} flows touched "
            f"(mean {perf['mean_flows_per_solve']:.1f}/solve), "
            f"{perf['solver_seconds'] * 1e3:.1f} ms in solver, "
            f"peak {perf['peak_active_flows']:.0f} flows, "
            f"{perf['jitter_noops']:.0f} jitter no-ops"
        )
    shuffle = result.shuffle_perf
    if shuffle:
        print(
            "  shuffle perf    : "
            f"{shuffle['blocks_fetched']:.0f} blocks fetched, "
            f"{shuffle['blocks_pushed']:.0f} pushed, "
            f"{shuffle['wan_bytes'] / 1e6:.1f} MB WAN / "
            f"{shuffle['intra_dc_bytes'] / 1e6:.1f} MB intra-DC / "
            f"{shuffle['local_bytes'] / 1e6:.1f} MB local, "
            f"{shuffle['merge_rounds']:.0f} merge rounds "
            f"(mean fan-in {shuffle['mean_merge_fan_in']:.1f})"
        )
    if result.injected_failures_total or result.straggler_hits:
        print(
            "  fault injection : "
            f"{result.injected_failures_total} attempt failure(s) "
            f"injected, {result.straggler_hits} straggler(s) hit"
        )
    if args.chaos:
        print(
            "  chaos           : "
            f"{result.chaos_events_applied}/{len(args.chaos)} "
            "event(s) applied"
        )
    recovery = result.recovery
    if recovery and any(recovery.values()):
        print(
            "  recovery        : "
            f"{recovery['tasks_relaunched']:.0f} relaunched, "
            f"{recovery['fetch_failures']:.0f} fetch failure(s), "
            f"{recovery['stages_resubmitted']:.0f} stage(s) resubmitted, "
            f"{recovery['tasks_recomputed']:.0f} task(s) recomputed, "
            f"speculative {recovery['speculative_wins']:.0f}W/"
            f"{recovery['speculative_launched']:.0f}L"
        )
        rec_wan = result.shuffle_perf.get("recovery_wan_bytes", 0.0)
        rec_intra = result.shuffle_perf.get("recovery_intra_dc_bytes", 0.0)
        if rec_wan or rec_intra:
            print(
                "  recovery bytes  : "
                f"{rec_wan / 1e6:.1f} MB WAN / "
                f"{rec_intra / 1e6:.1f} MB intra-DC"
            )
    health_counters = result.health
    if health_counters and any(health_counters.values()):
        print(
            "  health          : "
            f"excluded {health_counters['stage_exclusions']:.0f} stage/"
            f"{health_counters['hosts_blacklisted']:.0f} host/"
            f"{health_counters['datacenters_blacklisted']:.0f} dc, "
            f"{health_counters['placements_vetoed']:.0f} veto(es), "
            f"breaker {health_counters['breaker_trips']:.0f}T/"
            f"{health_counters['breaker_probes']:.0f}P/"
            f"{health_counters['breaker_closes']:.0f}C, "
            f"{health_counters['flow_retries']:.0f} flow retrie(s) "
            f"({health_counters['retry_wasted_bytes'] / 1e6:.1f} MB wasted), "
            f"{health_counters['reelections']:.0f} re-election(s), "
            f"{health_counters['fallback_activations']:.0f} fallback(s)"
        )
    _print_sanitize_report(sanitizer)
    return 0


def _parse_arrival(text: str):
    """``PROCESS:RATE:JOBS[:FACTOR[:FRACTION]]`` -> ArrivalSpec.

    Errors name the offending token, like ``--chaos`` parsing does.
    """
    from repro.workloads.arrivals import ARRIVAL_PROCESSES, ArrivalSpec

    parts = text.split(":")
    if len(parts) < 3 or len(parts) > 5:
        raise SystemExit(
            f"--arrival: expected PROCESS:RATE:JOBS[:FACTOR[:FRACTION]], "
            f"got {text!r}"
        )
    process = parts[0]
    if process not in ARRIVAL_PROCESSES:
        raise SystemExit(
            f"--arrival: unknown process {process!r} "
            f"(choose from: {', '.join(ARRIVAL_PROCESSES)})"
        )
    labels = ("rate (jobs/min)", "job count", "burst factor", "burst fraction")
    values = []
    for label, token in zip(labels, parts[1:]):
        try:
            values.append(float(token))
        except ValueError:
            raise SystemExit(
                f"--arrival: bad {label} token {token!r} in {text!r}"
            ) from None
    spec = ArrivalSpec(
        process=process,
        rate_per_minute=values[0],
        num_jobs=int(values[1]),
        **(
            {"burst_factor": values[2]} if len(values) > 2 else {}
        ),
        **(
            {"burst_fraction": values[3]} if len(values) > 3 else {}
        ),
    )
    _validated(spec, "--arrival")
    return spec


def _parse_tenants(text: str):
    """``NAME[:WEIGHT[:SHARE]],...`` -> tuple of TenantSpec."""
    from repro.workloads.arrivals import TenantSpec

    tenants = []
    for token in text.split(","):
        parts = token.split(":")
        if not parts[0] or len(parts) > 3:
            raise SystemExit(
                f"--tenants: bad tenant token {token!r} in {text!r} "
                "(expected NAME[:WEIGHT[:SHARE]])"
            )
        numbers = []
        for label, raw in zip(("weight", "share"), parts[1:]):
            try:
                numbers.append(float(raw))
            except ValueError:
                raise SystemExit(
                    f"--tenants: bad {label} token {raw!r} in {token!r}"
                ) from None
        tenants.append(
            TenantSpec(
                name=parts[0],
                weight=numbers[0] if numbers else 1.0,
                share=numbers[1] if len(numbers) > 1 else 1.0,
            )
        )
    return tuple(tenants)


def _validated(spec, flag: str):
    from repro.errors import WorkloadError

    try:
        spec.validate()
    except WorkloadError as error:
        raise SystemExit(f"{flag}: {error}") from None
    return spec


def cmd_stream(args: argparse.Namespace) -> int:
    from repro.scheduler.job_scheduler import JOB_POLICIES
    from repro.workloads.arrivals import StreamSpec

    sanitizer = _maybe_sanitize(args)
    if args.policy not in JOB_POLICIES:
        raise SystemExit(
            f"--policy: unknown policy {args.policy!r} "
            f"(choose from: {', '.join(JOB_POLICIES)})"
        )
    mix = ()
    if args.mix:
        mix = tuple(token for token in args.mix.split(",") if token)
    arrival = _parse_arrival(args.arrival)
    if mix:
        from dataclasses import replace as _replace

        arrival = _validated(_replace(arrival, mix=mix), "--mix")
    stream = _validated(
        StreamSpec(
            arrival=arrival,
            tenants=_parse_tenants(args.tenants),
            policy=args.policy,
            max_concurrent=args.max_concurrent,
        ),
        "stream",
    )
    scheme = _scheme(args.scheme)
    plan = ExperimentPlan(seeds=(args.seed,), stream=stream)
    # The workload argument only labels single-job cells; stream cells
    # build their own mini jobs from the arrival schedule.
    result = run_workload_once(all_workloads()[0], scheme, args.seed, plan)
    info = result.stream
    print(
        f"stream / {scheme.value} (seed {args.seed}, policy {info['policy']})"
    )
    print(f"  shuffle backend : {result.backend}")
    print(
        f"  jobs            : {info['jobs_completed']:.0f} completed / "
        f"{info['jobs_failed']:.0f} failed of {info['jobs_submitted']:.0f} "
        f"(arrivals span {info['arrival_span_s']:.1f} s)"
    )
    print(f"  stream duration : {result.job_duration:9.1f} s")
    print(f"  cross-DC traffic: {result.cross_dc_megabytes:9.1f} MB")
    headers = [
        "tenant", "jobs", "JCT p50 (s)", "JCT p95 (s)", "JCT p99 (s)",
        "makespan (s)", "MB", "WAN MB",
    ]
    rows = []
    for tenant, row in result.tenants.items():
        rows.append([
            tenant,
            f"{row.get('jobs_completed', 0):.0f}/{row.get('jobs_submitted', 0):.0f}",
            f"{row.get('jct_p50_s', 0.0):.2f}",
            f"{row.get('jct_p95_s', 0.0):.2f}",
            f"{row.get('jct_p99_s', 0.0):.2f}",
            f"{row.get('makespan_s', 0.0):.1f}",
            f"{row.get('bytes', 0.0) / 1e6:.1f}",
            f"{row.get('wan_bytes', 0.0) / 1e6:.1f}",
        ])
    print(format_table(headers, rows))
    _print_sanitize_report(sanitizer)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.engine import (
        format_findings,
        lint_paths,
        load_config,
    )
    from repro.errors import ConfigurationError

    try:
        config = load_config(
            Path(args.config) if args.config is not None else None
        )
        findings = lint_paths([Path(p) for p in args.paths], config)
    except ConfigurationError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    print(
        format_findings(
            findings,
            as_json=args.json,
            show_suppressed=args.show_suppressed,
        )
    )
    return 1 if any(not f.suppressed for f in findings) else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.failures.campaign import CampaignConfig, run_campaign

    backends: tuple = ()
    if args.backends:
        from repro.shuffle.backends import backend_names

        known = tuple(backend_names())
        backends = tuple(t for t in args.backends.split(",") if t)
        for backend in backends:
            if backend not in known:
                raise SystemExit(
                    f"--backends: unknown backend {backend!r} "
                    f"(choose from: {', '.join(known)})"
                )
    policies: tuple = ()
    if args.policies:
        policies = tuple(t for t in args.policies.split(",") if t)
    schedules = args.schedules
    seed = args.seed
    if args.smoke:
        # CI preset: fixed seed, bounded budget, full oracle + minimizer.
        schedules = 200
        seed = 0
    kwargs = {}
    if policies:
        kwargs["policies"] = policies
    config = CampaignConfig(
        seed=seed,
        schedules=schedules,
        max_wall_seconds=args.max_wall_seconds,
        backends=backends,
        rotate=not args.full_matrix,
        minimize=not args.no_minimize,
        artifact_dir=args.artifact_dir,
        **kwargs,
    )
    try:
        config.validate()
        report = run_campaign(config, jobs=args.jobs)
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    print(report.format_summary())
    return 1 if report.findings else 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = workload_by_name(args.workload)
    plan = _plan(args.seeds)
    rows = []
    for scheme in PAPER_SCHEMES:
        runs = [
            run_workload_once(workload, scheme, seed, plan)
            for seed in plan.seeds
        ]
        jct = sum(r.duration for r in runs) / len(runs)
        traffic = sum(r.cross_dc_megabytes for r in runs) / len(runs)
        rows.append([scheme.value, f"{jct:.1f}", f"{traffic:.1f}"])
    print(format_table(["scheme", "JCT (s)", "cross-DC MB"], rows))
    return 0


def _matrix(args: argparse.Namespace):
    return run_matrix_parallel(
        all_workloads(),
        list(PAPER_SCHEMES),
        _plan(args.seeds),
        jobs=args.jobs,
    )


def cmd_fig7(args: argparse.Namespace) -> int:
    figure = fig7_job_completion_times(_matrix(args))
    rows = []
    for workload, by_scheme in figure.items():
        row = [workload]
        for scheme in PAPER_SCHEMES:
            stats = by_scheme[scheme.value]
            row.append(f"{stats.trimmed:.1f}")
        rows.append(row)
    headers = ["workload"] + [s.value for s in PAPER_SCHEMES]
    print("Fig. 7 — trimmed-mean JCT (s)")
    print(format_table(headers, rows))
    return 0


def cmd_fig8(args: argparse.Namespace) -> int:
    figure = fig8_cross_dc_traffic(_matrix(args))
    headers = ["workload"] + [s.value for s in PAPER_SCHEMES]
    rows = [
        [workload] + [f"{by_scheme.get(s.value, 0):.1f}" for s in PAPER_SCHEMES]
        for workload, by_scheme in figure.items()
    ]
    print("Fig. 8 — cross-DC traffic (MB)")
    print(format_table(headers, rows))
    return 0


def cmd_headline(args: argparse.Namespace) -> int:
    headline = headline_numbers(_matrix(args))
    rows = [
        [
            workload,
            f"{entry['jct_reduction_pct']:.1f}",
            f"{entry.get('traffic_reduction_pct', float('nan')):.1f}",
        ]
        for workload, entry in headline.items()
    ]
    print(format_table(
        ["workload", "JCT reduction %", "traffic reduction %"], rows
    ))
    return 0


def cmd_lineage(args: argparse.Namespace) -> int:
    from repro.experiments.placement import skewed_block_placement
    from repro.experiments.runner import generated_input
    from repro.experiments.schemes import config_for_scheme
    from repro.cluster.context import ClusterContext
    from repro.metrics.reporting import lineage_dump
    from repro.simulation import RandomSource

    workload = workload_by_name(args.workload)
    scheme = _scheme(args.scheme)
    plan = _plan(1)
    config = config_for_scheme(scheme, workload.spec, 0)
    context = ClusterContext(plan.cluster, config)
    partitions = generated_input(workload, 0)
    placement = skewed_block_placement(
        plan.cluster,
        RandomSource(0).child(f"placement:{workload.name}"),
        len(partitions),
    )
    workload.install(context, partitions, placement_hosts=placement)
    rdd = workload.build(context)
    # Apply the backend's lineage rewrite (e.g. implicit transfer_to
    # insertion for push_aggregate) so the dump shows what actually runs.
    rdd = context.shuffle_service.prepare_job(rdd)
    print(lineage_dump(rdd))
    context.shutdown()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Optimizing Shuffle in Wide-Area Data "
            "Analytics' (ICDCS 2017)"
        ),
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=25,
        type=int,
        default=None,
        metavar="N",
        help="profile the command under cProfile and print the top N "
        "functions by cumulative time (default 25) after the normal "
        "output — pair with the fabric perf counters to localise "
        "simulator hot spots",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one workload/scheme cell")
    run.add_argument("workload")
    run.add_argument("--scheme", default="aggshuffle")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--chaos",
        action="append",
        metavar="SPEC",
        help="timed fault to inject (repeatable): crash:<host>@<t>, "
        "host:<host>@<t>, outage:<dc>@<t>, merger:<dc>@<t>, "
        "shuffle_worker:<dc>@<t>, blob_outage:<dc>@<t>[+<duration>], "
        "degrade:<src_dc>-><dst_dc>@<t>x<factor>[+<duration>], or "
        "partition:<src_dc>-><dst_dc>@<t>[+<duration>]; "
        "random:<n>@<seed> draws n events from the fuzz grammar, "
        "@artifact.json replays a campaign reproducer (DESIGN.md §15)",
    )
    run.add_argument(
        "--blacklist",
        action="store_true",
        help="enable excludeOnFailure-style blacklisting: repeated task "
        "failures exclude the (executor, stage), then the executor, "
        "then its datacenter from placement (timed expiry; DESIGN.md §10)",
    )
    run.add_argument(
        "--flow-retry",
        action="store_true",
        help="enable flow-level retry with per-flow deadlines and WAN "
        "circuit breakers: transient degradations are absorbed by "
        "re-issued flows instead of stage resubmission (DESIGN.md §10)",
    )
    run.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime invariant sanitizer (capacity "
        "conservation, rate sanity, clock monotonicity, ledger/monitor "
        "reconciliation); equivalent to REPRO_SANITIZE=1 (DESIGN.md §13)",
    )
    run.set_defaults(func=cmd_run)

    stream = commands.add_parser(
        "stream",
        help="run a multi-tenant job stream through the inter-job "
        "scheduler on one shared cluster",
    )
    stream.add_argument(
        "--arrival",
        default="poisson:12:50",
        metavar="SPEC",
        help="arrival process: PROCESS:RATE:JOBS[:FACTOR[:FRACTION]] "
        "with PROCESS poisson|bursty, RATE in jobs/min "
        "(default poisson:12:50)",
    )
    stream.add_argument(
        "--tenants",
        default="default",
        metavar="SPEC",
        help="comma-separated tenants: NAME[:WEIGHT[:SHARE]] — WEIGHT "
        "drives the WAN fair share and the fair policy's executor "
        "share, SHARE the arrival mix (default one unit-weight tenant)",
    )
    stream.add_argument(
        "--policy",
        default="fifo",
        help="inter-job admission policy: fifo, fair, sjf, or pack",
    )
    stream.add_argument(
        "--mix",
        default=None,
        help="comma-separated workload specs shaping job sizes "
        "(default: all five Table I specs)",
    )
    stream.add_argument("--scheme", default="aggshuffle")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--max-concurrent", type=int, default=4)
    stream.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime invariant sanitizer "
        "(see `repro run --help`)",
    )
    stream.set_defaults(func=cmd_stream)

    lint = commands.add_parser(
        "lint",
        help="run the determinism/accounting static analysis "
        "(exit 0 clean, 1 findings, 2 usage error)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    lint.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.repro-lint] from "
        "(default: search upward from the current directory)",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by pragmas (with their reasons)",
    )
    lint.set_defaults(func=cmd_lint)

    fuzz = commands.add_parser(
        "fuzz",
        help="chaos campaign: coverage-guided fault fuzzing of the "
        "backend x policy matrix under invariant oracles (DESIGN.md §15)",
    )
    fuzz.add_argument(
        "--schedules", type=int, default=50,
        help="schedule budget (default 50)",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--max-wall-seconds", type=float, default=None,
        help="stop drawing new schedules after this much wall time",
    )
    fuzz.add_argument(
        "--backends", default=None,
        help="comma-separated backends to fuzz (default: all registered)",
    )
    fuzz.add_argument(
        "--policies", default=None,
        help="comma-separated policies: baseline, health, speculate "
        "(default: all three)",
    )
    fuzz.add_argument(
        "--full-matrix", action="store_true",
        help="run every schedule against every backend x policy column "
        "(default: rotate one column per schedule)",
    )
    fuzz.add_argument(
        "--no-minimize", action="store_true",
        help="report raw failing schedules without ddmin minimization",
    )
    fuzz.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="write a replayable JSON artifact per finding "
        "(replay with `repro run --chaos @<artifact>`)",
    )
    fuzz.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the cell matrix "
        "(default: $REPRO_JOBS or sequential)",
    )
    fuzz.add_argument(
        "--smoke", action="store_true",
        help="CI preset: fixed seed 0, 200-schedule budget",
    )
    fuzz.set_defaults(func=cmd_fuzz)

    compare = commands.add_parser(
        "compare", help="compare the three schemes on one workload"
    )
    compare.add_argument("workload")
    compare.add_argument("--seeds", type=int, default=3)
    compare.set_defaults(func=cmd_compare)

    for name, func, help_text in (
        ("fig7", cmd_fig7, "regenerate Fig. 7 (job completion times)"),
        ("fig8", cmd_fig8, "regenerate Fig. 8 (cross-DC traffic)"),
        ("headline", cmd_headline, "the paper's headline reductions"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("--seeds", type=int, default=10)
        sub.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes for the run matrix "
            "(default: $REPRO_JOBS or sequential)",
        )
        sub.set_defaults(func=func)

    lineage = commands.add_parser(
        "lineage", help="dump a workload's RDD lineage DAG"
    )
    lineage.add_argument("workload")
    lineage.add_argument("--scheme", default="aggshuffle")
    lineage.set_defaults(func=cmd_lineage)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.profile is None:
        return args.func(args)
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = args.func(args)
    finally:
        profiler.disable()
        print(f"\ncProfile — top {args.profile} by cumulative time")
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        stats.print_stats(args.profile)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
