"""Datanodes: per-host block storage.

One datanode per worker host.  It tracks the blocks resident on that host
and the cumulative bytes written, which the metrics layer uses for
utilisation reporting.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import BlockNotFoundError
from repro.storage.block import Block, BlockId


class DataNode:
    """Block storage attached to one host."""

    def __init__(self, host_name: str) -> None:
        self.host_name = host_name
        self._blocks: Dict[BlockId, Block] = {}
        self.bytes_written = 0.0

    def put(self, block: Block) -> None:
        self._blocks[block.block_id] = block
        self.bytes_written += block.size_bytes

    def get(self, block_id: BlockId) -> Block:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise BlockNotFoundError(
                f"block {block_id!r} not on host {self.host_name!r}"
            ) from None

    def has(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def remove(self, block_id: BlockId) -> None:
        self._blocks.pop(block_id, None)

    def block_ids(self) -> List[BlockId]:
        return list(self._blocks)

    @property
    def used_bytes(self) -> float:
        return sum(block.size_bytes for block in self._blocks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DataNode {self.host_name} blocks={len(self._blocks)}>"
