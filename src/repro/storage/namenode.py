"""The namenode: file namespace and block-location metadata.

Tracks which hosts hold which blocks, and maps file paths to ordered block
lists.  Replica placement follows a round-robin policy over a caller-
supplied host list, which is how the experiment harness spreads input
partitions across datacenters (the geo-distributed raw data of the paper)
or pins them to one region (skewed-input scenarios).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import (
    BlockNotFoundError,
    FileExistsInDFSError,
    FileNotFoundInDFSError,
)
from repro.storage.block import BlockId


class NameNode:
    """Pure-metadata directory of files, blocks, and replica locations."""

    def __init__(self, replication: int = 1) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.replication = replication
        self._files: Dict[str, List[BlockId]] = {}
        self._locations: Dict[BlockId, List[str]] = {}

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------
    def create_file(self, path: str) -> None:
        if path in self._files:
            raise FileExistsInDFSError(f"path {path!r} already exists")
        self._files[path] = []

    def delete_file(self, path: str) -> List[BlockId]:
        """Remove a file, returning its block ids for datanode cleanup."""
        if path not in self._files:
            raise FileNotFoundInDFSError(f"path {path!r} not found")
        blocks = self._files.pop(path)
        for block_id in blocks:
            self._locations.pop(block_id, None)
        return blocks

    def exists(self, path: str) -> bool:
        return path in self._files

    def list_files(self) -> List[str]:
        return list(self._files)

    def file_blocks(self, path: str) -> List[BlockId]:
        try:
            return list(self._files[path])
        except KeyError:
            raise FileNotFoundInDFSError(f"path {path!r} not found") from None

    # ------------------------------------------------------------------
    # Block metadata
    # ------------------------------------------------------------------
    def append_block(
        self, path: str, block_id: BlockId, hosts: Sequence[str]
    ) -> None:
        if path not in self._files:
            raise FileNotFoundInDFSError(f"path {path!r} not found")
        if not hosts:
            raise ValueError("a block needs at least one replica host")
        self._files[path].append(block_id)
        self._locations[block_id] = list(hosts)

    def block_locations(self, block_id: BlockId) -> List[str]:
        try:
            return list(self._locations[block_id])
        except KeyError:
            raise BlockNotFoundError(f"block {block_id!r} unknown") from None

    def remove_host_replicas(self, host: str) -> List[BlockId]:
        """Drop ``host`` from every block's replica list (host failure).

        Returns the block ids left with *no* surviving replica — lost
        data that only lineage recomputation can restore.
        """
        lost: List[BlockId] = []
        for block_id, hosts in self._locations.items():
            if host in hosts:
                hosts.remove(host)
                if not hosts:
                    lost.append(block_id)
        return lost

    def choose_replica_hosts(
        self, candidate_hosts: Sequence[str], block_index: int
    ) -> List[str]:
        """Round-robin replica placement over ``candidate_hosts``."""
        if not candidate_hosts:
            raise ValueError("no candidate hosts for replica placement")
        count = min(self.replication, len(candidate_hosts))
        start = block_index % len(candidate_hosts)
        return [
            candidate_hosts[(start + offset) % len(candidate_hosts)]
            for offset in range(count)
        ]
