"""BlobStore: a per-region object store for shuffle payloads.

The BlobShuffle design point (PAPERS.md): map output is written to a
regional object store and is then *durable by construction* — executor
or even whole-fleet loss costs re-read dollars (GET requests + egress),
never recomputation.  The store itself is deliberately simple:

* one *endpoint host* per region — the lexicographically first host of
  the datacenter in the **topology** (not the executor fleet), so the
  front-end keeps serving flows even after every executor in the region
  died (`fail_host` shrinks the executor dict, never the topology);
* durable object copies keyed ``(shuffle_id, map_index)``, held per
  region with their shard payloads, surviving any host loss;
* request metering (PUT/GET counts, priced per-request by
  :class:`repro.metrics.billing.BlobPricing`) and per-request latency
  draws from a dedicated :class:`~repro.simulation.random_source.
  RandomSource` stream (identical across plain/sanitized runs);
* transient-error windows: a ``blob_outage`` chaos event opens a timed
  regional outage, and requests issued inside the window retry until it
  closes (counted in ``transient_retries``).

The store never issues flows itself — the ``blob`` backend drives it
and accounts every byte.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.topology import Topology
    from repro.shuffle.stores import ShuffleShard
    from repro.simulation.random_source import RandomSource

ObjectKey = Tuple[int, int]


class BlobObject:
    """One durable object: a map output's shard payloads in one region."""

    __slots__ = ("key", "region", "size_bytes", "shards")

    def __init__(
        self,
        key: ObjectKey,
        region: str,
        size_bytes: float,
        shards: List[ShuffleShard],
    ) -> None:
        self.key = key
        self.region = region
        self.size_bytes = size_bytes
        self.shards = shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlobObject({self.key}, {self.region}, {self.size_bytes:.0f}B)"


class BlobStore:
    """Per-region durable objects, request metering, outage windows."""

    __slots__ = ("topology", "randomness", "base_latency", "latency_jitter",
                 "retry_backoff", "_objects", "_outage_until", "puts", "gets",
                 "transient_retries")

    def __init__(
        self,
        topology: Topology,
        randomness: RandomSource,
        base_latency: float = 0.02,
        latency_jitter: float = 0.01,
        retry_backoff: float = 0.1,
    ) -> None:
        self.topology = topology
        self.randomness = randomness
        self.base_latency = base_latency
        self.latency_jitter = latency_jitter
        self.retry_backoff = retry_backoff
        self._objects: Dict[ObjectKey, BlobObject] = {}
        self._outage_until: Dict[str, float] = {}
        self.puts = 0
        self.gets = 0
        self.transient_retries = 0

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def endpoint_host(self, region: str) -> str:
        """The region's front-end host — a topology member, so it routes
        flows whether or not its executor is still alive."""
        return sorted(self.topology.hosts_in(region))[0]

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------
    def put(
        self,
        region: str,
        key: ObjectKey,
        shards: List[ShuffleShard],
        size_bytes: float,
    ) -> None:
        self._objects[key] = BlobObject(key, region, size_bytes, shards)
        self.puts += 1

    def note_get(self, count: int = 1) -> None:
        self.gets += count

    def get_object(self, key: ObjectKey) -> Optional[BlobObject]:
        return self._objects.get(key)

    def objects(self) -> List[BlobObject]:
        """Every durable object, in sorted key order (deterministic)."""
        return [self._objects[key] for key in sorted(self._objects)]

    def drop_shuffle(self, shuffle_id: int) -> None:
        for key in [k for k in self._objects if k[0] == shuffle_id]:
            del self._objects[key]

    # ------------------------------------------------------------------
    # Latency and outages
    # ------------------------------------------------------------------
    def request_latency(self, kind: str) -> float:
        """One request's service latency (seeded, never negative)."""
        draw = self.randomness.gauss(
            f"blob:{kind}", self.base_latency, self.latency_jitter
        )
        return max(0.0, draw)

    def open_outage(self, region: str, until: float) -> None:
        if region not in self.topology.datacenters:
            raise KeyError(f"unknown region {region!r}")
        self._outage_until[region] = max(
            self._outage_until.get(region, 0.0), until
        )

    def outage_remaining(self, region: str, now: float) -> float:
        """Seconds left in ``region``'s outage window (0 when healthy)."""
        return max(0.0, self._outage_until.get(region, 0.0) - now)
