"""A simple disk-throughput model.

The paper's instances use SSD-backed `m3.large` nodes; within a datacenter
Spark treats network as cheaper than disk, so the absolute numbers matter
less than being non-zero and proportional to bytes.  Sequential throughput
defaults to 150 MB/s for both reads and writes with a small per-operation
seek overhead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Charges simulated time for disk I/O."""

    read_bytes_per_second: float = 150e6
    write_bytes_per_second: float = 150e6
    seek_seconds: float = 0.001

    def read_time(self, size_bytes: float) -> float:
        if size_bytes < 0:
            raise ValueError("negative read size")
        if size_bytes == 0:
            return 0.0
        return self.seek_seconds + size_bytes / self.read_bytes_per_second

    def write_time(self, size_bytes: float) -> float:
        if size_bytes < 0:
            raise ValueError("negative write size")
        if size_bytes == 0:
            return 0.0
        return self.seek_seconds + size_bytes / self.write_bytes_per_second
