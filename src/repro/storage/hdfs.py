"""The DFS facade: write/read files of record blocks with locality.

:class:`DistributedFileSystem` glues the namenode and the per-host
datanodes together and is the layer the RDD engine's ``textFile``-style
inputs sit on.  Writes and reads are plain (non-simulated) metadata
operations — the *time* for input I/O is charged by tasks through the
disk model, and network time for non-local reads through the fabric; the
DFS itself only answers "what's where".
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import BlockNotFoundError
from repro.storage.block import Block, BlockId
from repro.storage.datanode import DataNode
from repro.storage.disk import DiskModel
from repro.storage.namenode import NameNode


class DistributedFileSystem:
    """HDFS-like storage spanning every host in the topology."""

    def __init__(
        self,
        host_names: Iterable[str],
        replication: int = 1,
        disk: Optional[DiskModel] = None,
    ) -> None:
        self.namenode = NameNode(replication=replication)
        self.datanodes: Dict[str, DataNode] = {
            name: DataNode(name) for name in host_names
        }
        self.disk = disk if disk is not None else DiskModel()
        self._block_ids = itertools.count()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write_file(
        self,
        path: str,
        partitions: Sequence[List[Any]],
        partition_sizes: Sequence[float],
        placement_hosts: Sequence[str],
    ) -> List[BlockId]:
        """Create ``path`` with one block per partition.

        ``placement_hosts`` drives round-robin replica placement; pass a
        single-host list to pin the whole file to one machine, or the whole
        cluster's host list to spread it.
        """
        if len(partitions) != len(partition_sizes):
            raise ValueError("partitions and partition_sizes length mismatch")
        self.namenode.create_file(path)
        block_ids: List[BlockId] = []
        for index, (records, size) in enumerate(zip(partitions, partition_sizes)):
            block_id = f"{path}#blk{next(self._block_ids)}"
            hosts = self.namenode.choose_replica_hosts(placement_hosts, index)
            block = Block(block_id, records=list(records), size_bytes=float(size))
            for host in hosts:
                self.datanodes[host].put(block)
            self.namenode.append_block(path, block_id, hosts)
            block_ids.append(block_id)
        return block_ids

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read_block(self, block_id: BlockId, from_host: Optional[str] = None) -> Block:
        """Fetch a block's payload, preferring the ``from_host`` replica."""
        locations = self.namenode.block_locations(block_id)
        if from_host is not None and from_host in locations:
            return self.datanodes[from_host].get(block_id)
        for host in locations:
            if self.datanodes[host].has(block_id):
                return self.datanodes[host].get(block_id)
        raise BlockNotFoundError(f"no live replica of block {block_id!r}")

    def block_locations(self, block_id: BlockId) -> List[str]:
        return self.namenode.block_locations(block_id)

    def file_blocks(self, path: str) -> List[BlockId]:
        return self.namenode.file_blocks(path)

    def block_size(self, block_id: BlockId) -> float:
        locations = self.namenode.block_locations(block_id)
        return self.datanodes[locations[0]].get(block_id).size_bytes

    def file_size(self, path: str) -> float:
        return sum(self.block_size(b) for b in self.file_blocks(path))

    def delete_file(self, path: str) -> None:
        for block_id in self.namenode.delete_file(path):
            for datanode in self.datanodes.values():
                datanode.remove(block_id)

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)
