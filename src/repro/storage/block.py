"""Blocks: the unit of storage and of input-split parallelism.

A block holds a list of *records* (arbitrary Python objects) together with
its logical size in bytes.  The logical size is what the network and disk
models charge for; it is computed by the RDD layer's size estimator when
the block is written, so scaled-down record counts can still represent
paper-scale byte volumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

BlockId = str


@dataclass
class Block:
    """An immutable-by-convention chunk of records plus size metadata."""

    block_id: BlockId
    records: List[Any] = field(default_factory=list)
    size_bytes: float = 0.0

    @property
    def record_count(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Block {self.block_id} {self.record_count} records, "
            f"{self.size_bytes / 1e6:.2f} MB>"
        )
