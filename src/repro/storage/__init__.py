"""HDFS-like distributed storage model.

Provides exactly what the experiments need from HDFS: a namespace of files
split into blocks, block placement across hosts (and therefore
datacenters), replica-aware locality queries, and a simple disk-throughput
model used to charge read/write time.

The namenode is pure metadata; actual record payloads live in
:class:`~repro.storage.datanode.DataNode` objects so that RDD tasks can
read genuine data while the simulation charges genuine time.
"""

from repro.storage.blob import BlobObject, BlobStore
from repro.storage.block import Block, BlockId
from repro.storage.datanode import DataNode
from repro.storage.namenode import NameNode
from repro.storage.disk import DiskModel
from repro.storage.hdfs import DistributedFileSystem

__all__ = [
    "BlobObject",
    "BlobStore",
    "Block",
    "BlockId",
    "DataNode",
    "NameNode",
    "DiskModel",
    "DistributedFileSystem",
]
