"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without catching programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation kernel is misused."""


class EventAlreadyFiredError(SimulationError):
    """Raised when succeeding or failing an event that has already fired."""


class ProcessDiedError(SimulationError):
    """Raised inside a process that waits on another process which failed."""


class LivenessError(SimulationError):
    """Raised when a simulation exceeds its wall-clock budget.

    The chaos campaign's liveness oracle: a run that blows through
    ``SimulationConfig.max_wall_seconds`` is flagged as a hung recovery
    instead of deadlocking the suite."""


class NetworkError(ReproError):
    """Base class for network-model errors."""


class NoRouteError(NetworkError):
    """Raised when the topology has no route between two hosts."""


class UnknownHostError(NetworkError):
    """Raised when a host or datacenter name is not present in the topology."""


class StorageError(ReproError):
    """Base class for distributed-storage errors."""


class BlockNotFoundError(StorageError):
    """Raised when a requested block id is not known to the namenode."""


class FileNotFoundInDFSError(StorageError):
    """Raised when a requested path is not present in the DFS namespace."""


class FileExistsInDFSError(StorageError):
    """Raised when creating a DFS path that already exists."""


class RDDError(ReproError):
    """Base class for RDD-engine errors."""


class LineageError(RDDError):
    """Raised when an RDD lineage graph is malformed (e.g. cyclic)."""


class PartitionError(RDDError):
    """Raised when a partition index is out of range or inconsistent."""


class SchedulerError(ReproError):
    """Base class for DAG/task scheduler errors."""


class NoEligibleExecutorError(SchedulerError):
    """Raised when a task cannot be placed on any executor at all."""


class TaskFailedError(SchedulerError):
    """Raised when a task exhausts its retry budget."""

    def __init__(self, task_id: str, attempts: int, cause: str = "") -> None:
        self.task_id = task_id
        self.attempts = attempts
        self.cause = cause
        message = f"task {task_id} failed after {attempts} attempts"
        if cause:
            message = f"{message}: {cause}"
        super().__init__(message)


class StageRecoveryError(SchedulerError):
    """Raised when a stage exhausts its lineage-resubmission budget."""

    def __init__(self, stage_name: str, resubmits: int) -> None:
        self.stage_name = stage_name
        self.resubmits = resubmits
        super().__init__(
            f"stage {stage_name} failed recovery after "
            f"{resubmits - 1} resubmission(s)"
        )


class ShuffleError(ReproError):
    """Base class for shuffle-machinery errors."""


class MapOutputMissingError(ShuffleError):
    """Raised when shuffle input for a reducer cannot be located."""


class FetchFailedError(ShuffleError):
    """A task found its boundary input gone (lost map output or staged
    transfer partition).  Mirrors Spark's ``FetchFailedException``: the
    DAG scheduler catches it, resubmits the producing parent stage from
    lineage, and retries the consumer."""

    def __init__(
        self,
        shuffle_id: int | None = None,
        transfer_id: int | None = None,
        detail: str = "",
    ) -> None:
        self.shuffle_id = shuffle_id
        self.transfer_id = transfer_id
        what = (
            f"shuffle {shuffle_id}" if shuffle_id is not None
            else f"transfer {transfer_id}"
        )
        message = f"fetch failed: {what} input missing"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class ConfigurationError(ReproError):
    """Raised when a configuration object is inconsistent."""


class WorkloadError(ReproError):
    """Raised when a workload specification is invalid."""
