"""repro: reproduction of *Optimizing Shuffle in Wide-Area Data Analytics*
(Liu, Wang, Li — ICDCS 2017).

A from-scratch, simulation-backed reimplementation of the paper's
Push/Aggregate shuffle for geo-distributed data analytics:

* a discrete-event simulation kernel (:mod:`repro.simulation`),
* a flow-level WAN model with max-min fair sharing and bandwidth jitter
  (:mod:`repro.network`),
* an HDFS-like distributed store (:mod:`repro.storage`),
* a Spark-like RDD engine executing real data (:mod:`repro.rdd`),
* DAG/task schedulers with locality-aware placement
  (:mod:`repro.scheduler`),
* the paper's contribution — ``transfer_to()``, aggregator selection,
  and implicit embedding before shuffles (:mod:`repro.core`),
* HiBench-style workloads, failure injection, metrics, and the full
  experiment harness (:mod:`repro.workloads`, :mod:`repro.failures`,
  :mod:`repro.metrics`, :mod:`repro.experiments`).

Quickstart::

    from repro import ClusterContext, ec2_six_region_spec, agg_shuffle_config

    context = ClusterContext(ec2_six_region_spec(), agg_shuffle_config())
    context.write_input_file("words", [[("spark", 1), ("wan", 1)]] * 8)
    pairs = context.text_file("words")
    counts = pairs.reduce_by_key(lambda a, b: a + b).collect()
"""

from repro.config import (
    CostModel,
    FailureConfig,
    SchedulingConfig,
    ShuffleConfig,
    SimulationConfig,
    agg_shuffle_config,
    fetch_config,
)
from repro.cluster.builder import (
    ClusterSpec,
    build_topology,
    ec2_six_region_spec,
    two_datacenter_spec,
)
from repro.cluster import Broadcast, ClusterContext, JobHandle
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "FailureConfig",
    "SchedulingConfig",
    "ShuffleConfig",
    "SimulationConfig",
    "fetch_config",
    "agg_shuffle_config",
    "ClusterSpec",
    "build_topology",
    "ec2_six_region_spec",
    "two_datacenter_spec",
    "ClusterContext",
    "JobHandle",
    "Broadcast",
    "ReproError",
    "__version__",
]
