"""Synthetic text generation: Zipf-distributed bags of words.

Stands in for HiBench's RandomTextWriter.  A *document* is a bag of
word-bucket counts: the vocabulary is bucketised (one simulated bucket
represents ``words_per_bucket`` real words), sampled with a Zipf law so
bucket popularity is realistically skewed, and drawn with numpy's
multinomial for speed.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.simulation.random_source import RandomSource

# Approximate serialized bytes of one real (word, count) entry.
REAL_ENTRY_BYTES = 39.0


def zipf_probabilities(vocabulary_size: int, exponent: float = 1.1) -> np.ndarray:
    """Normalised Zipf weights over a finite vocabulary."""
    if vocabulary_size < 1:
        raise ValueError("vocabulary_size must be >= 1")
    ranks = np.arange(1, vocabulary_size + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class TextGenerator:
    """Generates documents as word-bucket count dictionaries."""

    def __init__(
        self,
        vocabulary_buckets: int = 2000,
        words_per_bucket: int = 500,
        tokens_per_document: int = 4000,
        zipf_exponent: float = 1.1,
    ) -> None:
        if vocabulary_buckets < 1 or words_per_bucket < 1:
            raise ValueError("vocabulary parameters must be positive")
        if tokens_per_document < 1:
            raise ValueError("tokens_per_document must be positive")
        self.vocabulary_buckets = vocabulary_buckets
        self.words_per_bucket = words_per_bucket
        self.tokens_per_document = tokens_per_document
        self.probabilities = zipf_probabilities(vocabulary_buckets, zipf_exponent)

    @property
    def bucket_bytes(self) -> float:
        """Real bytes represented by one bucket's combined count entry."""
        return self.words_per_bucket * REAL_ENTRY_BYTES

    def bucket_name(self, index: int) -> str:
        return f"w{index:05d}"

    def document(self, randomness: RandomSource, stream: str) -> Dict[str, int]:
        """One document: bucket name -> token count (nonzero buckets only)."""
        seed = randomness.stream(stream).getrandbits(32)
        # repro-lint: allow[DET001] rng is seeded from the named RandomSource stream; fully deterministic per (seed, stream)
        rng = np.random.default_rng(seed)
        counts = rng.multinomial(self.tokens_per_document, self.probabilities)
        return {
            self.bucket_name(index): int(count)
            for index, count in enumerate(counts)
            if count > 0
        }

    def documents(
        self, randomness: RandomSource, stream_prefix: str, count: int
    ) -> List[Dict[str, int]]:
        return [
            self.document(randomness, f"{stream_prefix}:{index}")
            for index in range(count)
        ]
