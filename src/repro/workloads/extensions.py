"""Extension workloads beyond the paper's Table I.

Two additional geo-distributed analytics patterns that exercise parts
of the engine the HiBench five do not:

* :class:`KMeans` — iterative clustering with *broadcast* model state:
  every iteration broadcasts the centroids (driver -> one copy per
  datacenter) and shuffles only the per-cluster partial sums.
* :class:`JoinAggregate` — a SQL-style star join: a large fact table is
  joined with a small dimension table, then aggregated by a dimension
  attribute (two chained shuffles through ``cogroup``).

Both follow the same Workload contract as the Table I five, so the
experiment harness and all three schemes apply unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.cluster.context import ClusterContext
from repro.rdd.rdd import RDD
from repro.rdd.size_estimator import SizedRecord
from repro.simulation.random_source import RandomSource
from repro.workloads.base import Workload, add_weighted
from repro.workloads.specs import MB, WorkloadSpec

KMEANS_SPEC = WorkloadSpec(
    name="KMeans",
    total_input_bytes=800 * MB,
    input_partitions=48,
    reduce_partitions=8,
    cpu_bytes_per_second=10e6,
    records_per_partition=20,  # point buckets
)

JOIN_SPEC = WorkloadSpec(
    name="JoinAggregate",
    total_input_bytes=1.2e9,   # the fact table; dimension is ~1 % extra
    input_partitions=48,
    reduce_partitions=8,
    cpu_bytes_per_second=12e6,
    records_per_partition=30,  # fact-row buckets
)


class KMeans(Workload):
    """Iterative 2-D clustering with broadcast centroids."""

    def __init__(
        self,
        spec: WorkloadSpec = KMEANS_SPEC,
        clusters: int = 4,
        iterations: int = 3,
    ) -> None:
        super().__init__(spec)
        if clusters < 1 or iterations < 1:
            raise ValueError("clusters and iterations must be >= 1")
        self.clusters = clusters
        self.iterations = iterations
        total_records = spec.input_partitions * spec.records_per_partition
        self.point_bytes = spec.total_input_bytes / total_records
        # Each cluster's partial sum represents many raw points.
        self.partial_bytes = self.point_bytes / 4

    # ------------------------------------------------------------------
    def generate(self, randomness: RandomSource) -> List[List[Any]]:
        """Gaussian blobs around ``clusters`` true centres."""
        stream = randomness.stream("kmeans:points")
        centres = [
            (10.0 * cluster, 5.0 * cluster)
            for cluster in range(self.clusters)
        ]
        partitions: List[List[Any]] = []
        for _partition in range(self.spec.input_partitions):
            records = []
            for _ in range(self.spec.records_per_partition):
                cx, cy = centres[stream.randrange(self.clusters)]
                point = (cx + stream.gauss(0, 1.0), cy + stream.gauss(0, 1.0))
                records.append(SizedRecord(point, natural_size=self.point_bytes))
            partitions.append(records)
        return partitions

    # ------------------------------------------------------------------
    @staticmethod
    def _nearest(point: Tuple[float, float], centres) -> int:
        best, best_distance = 0, float("inf")
        for index, (cx, cy) in enumerate(centres):
            distance = (point[0] - cx) ** 2 + (point[1] - cy) ** 2
            if distance < best_distance:
                best, best_distance = index, distance
        return best

    def initial_centres(self) -> List[Tuple[float, float]]:
        return [(3.0 * k, 3.0 * k) for k in range(self.clusters)]

    def run(self, context: ClusterContext) -> List[Tuple[float, float]]:
        partial_bytes = self.partial_bytes
        nearest = self._nearest
        points = context.text_file(self.input_path).cache()
        centres = self.initial_centres()
        for _iteration in range(self.iterations):
            published = context.broadcast(tuple(centres))

            def assign(record, current):
                point = record.payload
                cluster = nearest(point, current)
                return (
                    cluster,
                    SizedRecord(
                        (point[0], point[1], 1.0),
                        natural_size=partial_bytes,
                    ),
                )

            def merge(left, right):
                lx, ly, ln = left.payload
                rx, ry, rn = right.payload
                return SizedRecord(
                    (lx + rx, ly + ry, ln + rn),
                    natural_size=max(left.natural_size, right.natural_size),
                )

            sums = (
                points.map_with_broadcast(assign, published)
                .reduce_by_key(merge, num_partitions=self.spec.reduce_partitions)
                .collect()
            )
            updated = list(centres)
            for cluster, total in sums:
                sx, sy, count = total.payload
                if count > 0:
                    updated[cluster] = (sx / count, sy / count)
            centres = updated
        return centres

    def build(self, context: ClusterContext) -> RDD:
        raise NotImplementedError(
            "KMeans is iterative with driver-side collects; use run()"
        )

    # ------------------------------------------------------------------
    def reference_result(
        self, partitions: Sequence[List[Any]]
    ) -> List[Tuple[float, float]]:
        points = [record.payload for part in partitions for record in part]
        centres = self.initial_centres()
        for _ in range(self.iterations):
            sums: Dict[int, List[float]] = {}
            for point in points:
                cluster = self._nearest(point, centres)
                entry = sums.setdefault(cluster, [0.0, 0.0, 0.0])
                entry[0] += point[0]
                entry[1] += point[1]
                entry[2] += 1.0
            updated = list(centres)
            for cluster, (sx, sy, count) in sums.items():
                if count > 0:
                    updated[cluster] = (sx / count, sy / count)
            centres = updated
        return centres


class JoinAggregate(Workload):
    """Star join: facts ⋈ dimension, aggregated by region."""

    REGIONS = ("na", "eu", "apac", "latam")

    def __init__(
        self, spec: WorkloadSpec = JOIN_SPEC, num_users: int = 200
    ) -> None:
        super().__init__(spec)
        self.num_users = num_users
        total_facts = spec.input_partitions * spec.records_per_partition
        self.fact_bytes = spec.total_input_bytes / total_facts
        self.dimension_bytes = 0.01 * spec.total_input_bytes / num_users

    @property
    def dimension_path(self) -> str:
        return f"{self.input_path}-users"

    # ------------------------------------------------------------------
    def generate(self, randomness: RandomSource) -> List[List[Any]]:
        stream = randomness.stream("join:facts")
        partitions: List[List[Any]] = []
        for _partition in range(self.spec.input_partitions):
            records = []
            for _ in range(self.spec.records_per_partition):
                user = stream.randrange(self.num_users)
                amount = stream.uniform(1.0, 100.0)
                records.append(
                    (user, SizedRecord(amount, natural_size=self.fact_bytes))
                )
            partitions.append(records)
        return partitions

    def generate_dimension(
        self, randomness: RandomSource
    ) -> List[List[Any]]:
        """The small users table: (user id, region), 4 blocks."""
        stream = randomness.stream("join:users")
        rows = [
            (
                user,
                SizedRecord(
                    self.REGIONS[stream.randrange(len(self.REGIONS))],
                    natural_size=self.dimension_bytes,
                ),
            )
            for user in range(self.num_users)
        ]
        blocks = 4
        return [rows[i::blocks] for i in range(blocks)]

    def install(
        self,
        context: ClusterContext,
        partitions: Sequence[List[Any]],
        placement_hosts=None,
    ) -> None:
        super().install(context, partitions, placement_hosts)
        dimension = self.generate_dimension(
            RandomSource(0).child("join:dimension")
        )
        context.write_input_file(self.dimension_path, dimension)

    # ------------------------------------------------------------------
    def build(self, context: ClusterContext) -> RDD:
        facts = context.text_file(self.input_path)
        users = context.text_file(self.dimension_path)
        joined = facts.join(users, num_partitions=self.spec.reduce_partitions)

        def to_region(record):
            _user, (amount, region) = record
            return (
                region.payload,
                SizedRecord(amount.payload, natural_size=amount.natural_size),
            )

        return joined.map(to_region, name="toRegion").reduce_by_key(
            add_weighted, num_partitions=self.spec.reduce_partitions
        )

    def run(self, context: ClusterContext) -> Dict[str, float]:
        return {
            region: total.payload
            for region, total in self.build(context).collect()
        }

    # ------------------------------------------------------------------
    def reference_result(
        self, partitions: Sequence[List[Any]]
    ) -> Dict[str, float]:
        dimension = {
            user: region.payload
            for block in self.generate_dimension(
                RandomSource(0).child("join:dimension")
            )
            for user, region in block
        }
        totals: Dict[str, float] = {}
        for block in partitions:
            for user, amount in block:
                region = dimension[user]
                totals[region] = totals.get(region, 0.0) + amount.payload
        return totals
