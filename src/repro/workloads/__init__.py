"""HiBench-style workloads (Table I of the paper).

Five workloads of increasing complexity: WordCount (one combined
shuffle), Sort (one full-data shuffle), TeraSort (full-data shuffle with
a bloating map — the paper's §V-B anomaly), PageRank (iterative joins
over cached links), and NaiveBayes (two chained shuffles).
"""

from repro.workloads.base import Workload, add_weighted, merge_counts
from repro.workloads.naive_bayes import NaiveBayes
from repro.workloads.pagerank import PageRank
from repro.workloads.sort import Sort
from repro.workloads.specs import (
    ALL_SPECS,
    NAIVE_BAYES,
    PAGERANK,
    PAGERANK_ITERATIONS,
    SORT,
    TERASORT,
    TERASORT_BLOAT_FACTOR,
    WORDCOUNT,
    WorkloadSpec,
    spec_by_name,
)
from repro.workloads.terasort import TeraSort
from repro.workloads.extensions import (
    JOIN_SPEC,
    KMEANS_SPEC,
    JoinAggregate,
    KMeans,
)
from repro.workloads.text_gen import TextGenerator
from repro.workloads.wordcount import WordCount


def all_workloads():
    """Fresh instances of the five Table I workloads, paper order."""
    return [WordCount(), Sort(), TeraSort(), PageRank(), NaiveBayes()]


def workload_by_name(name: str) -> Workload:
    for workload in all_workloads():
        if workload.name.lower() == name.lower():
            return workload
    raise KeyError(f"unknown workload {name!r}")


__all__ = [
    "Workload",
    "merge_counts",
    "add_weighted",
    "WordCount",
    "Sort",
    "TeraSort",
    "PageRank",
    "NaiveBayes",
    "TextGenerator",
    "WorkloadSpec",
    "spec_by_name",
    "ALL_SPECS",
    "WORDCOUNT",
    "SORT",
    "TERASORT",
    "TERASORT_BLOAT_FACTOR",
    "PAGERANK",
    "PAGERANK_ITERATIONS",
    "NAIVE_BAYES",
    "all_workloads",
    "workload_by_name",
    "KMeans",
    "JoinAggregate",
    "KMEANS_SPEC",
    "JOIN_SPEC",
]
