"""Naive Bayes training: two consecutive shuffles over classified text.

Program (HiBench equivalent)::

    pairs  = docs.flatMap(doc -> ((class, term), count))
    counts = pairs.reduceByKey(add)              # shuffle 1
    model  = counts.map(to_class).reduceByKey(merge)  # shuffle 2
    model.collect()

100,000 classified pages, 100 classes (Table I).  Classes and vocabulary
are bucketised like WordCount; the second shuffle folds per-(class, term)
counts into per-class model slices, whose sizes *add* (different terms
of a class are distinct model entries).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Sequence, Tuple

from repro.cluster.context import ClusterContext
from repro.rdd.rdd import RDD
from repro.rdd.size_estimator import SizedRecord
from repro.simulation.random_source import RandomSource
from repro.workloads.base import Workload, merge_counts
from repro.workloads.specs import (
    NAIVE_BAYES,
    NAIVE_BAYES_CLASSES,
    WorkloadSpec,
)
from repro.workloads.text_gen import TextGenerator

# 100 real classes bucketised into 20 simulated class buckets.
_CLASS_BUCKETS = 20


def _merge_model_slices(left: SizedRecord, right: SizedRecord) -> SizedRecord:
    """Distinct model entries of one class: counts and bytes both add."""
    return SizedRecord(
        left.payload + right.payload,
        left.natural_size + right.natural_size,
    )


class NaiveBayes(Workload):
    """Classified documents -> per-class term-count model."""

    def __init__(
        self,
        spec: WorkloadSpec = NAIVE_BAYES,
        generator: TextGenerator | None = None,
    ) -> None:
        super().__init__(spec)
        self.generator = (
            generator
            if generator is not None
            else TextGenerator(vocabulary_buckets=1500, tokens_per_document=3000)
        )

    # ------------------------------------------------------------------
    def generate(self, randomness: RandomSource) -> List[List[Any]]:
        doc_bytes = (
            self.spec.bytes_per_input_partition / self.spec.records_per_partition
        )
        class_stream = randomness.stream("bayes:classes")
        partitions: List[List[Any]] = []
        for partition in range(self.spec.input_partitions):
            records = []
            for index in range(self.spec.records_per_partition):
                real_class = class_stream.randrange(NAIVE_BAYES_CLASSES)
                class_bucket = real_class % _CLASS_BUCKETS
                bag = self.generator.document(
                    randomness, f"bayes:p{partition}:d{index}"
                )
                records.append(
                    SizedRecord((class_bucket, bag), natural_size=doc_bytes)
                )
            partitions.append(records)
        return partitions

    # ------------------------------------------------------------------
    def build(self, context: ClusterContext) -> RDD:
        bucket_bytes = self.generator.bucket_bytes

        def emit_pairs(document: SizedRecord):
            class_bucket, bag = document.payload
            for term_bucket, count in bag.items():
                yield (
                    (class_bucket, term_bucket),
                    SizedRecord(count, natural_size=bucket_bytes),
                )

        docs = context.text_file(self.input_path)
        pairs = docs.flat_map(emit_pairs, name="vectorize")
        term_counts = pairs.reduce_by_key(
            merge_counts, num_partitions=self.spec.reduce_partitions
        )
        class_slices = term_counts.map(
            lambda kv: (kv[0][0], SizedRecord(kv[1].payload, kv[1].natural_size)),
            name="to-class",
        )
        return class_slices.reduce_by_key(
            _merge_model_slices, num_partitions=self.spec.reduce_partitions
        )

    def run(self, context: ClusterContext) -> List[Any]:
        return self.build(context).collect()

    # ------------------------------------------------------------------
    def reference_result(
        self, partitions: Sequence[List[Any]]
    ) -> Dict[int, int]:
        """Ground truth: class bucket -> total token count."""
        totals: Counter = Counter()
        for partition in partitions:
            for document in partition:
                class_bucket, bag = document.payload
                totals[class_bucket] += sum(bag.values())
        return dict(totals)

    @staticmethod
    def result_to_totals(result: List[Tuple[int, Any]]) -> Dict[int, int]:
        return {class_bucket: value.payload for class_bucket, value in result}
