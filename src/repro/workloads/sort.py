"""Sort: a full-data shuffle with range partitioning.

Program (HiBench equivalent)::

    data.map(parse).sortByKey().saveAsFile()

Every byte of the 320 MB input crosses the shuffle (no combiner), which
makes Sort the cleanest probe of raw shuffle-transfer behaviour.  Input
records are chunky ``(key, SizedRecord)`` pairs: one record stands for a
bucket of real 100-byte records sharing a key prefix, so range
partitioning still spreads them evenly over reducers.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.cluster.context import ClusterContext
from repro.rdd.rdd import RDD
from repro.rdd.size_estimator import SizedRecord
from repro.simulation.random_source import RandomSource
from repro.workloads.base import Workload
from repro.workloads.specs import SORT, WorkloadSpec

# Width of the random key space; keys are fixed-width hex strings so
# lexicographic order equals numeric order.
_KEY_SPACE = 16 ** 8


def _key_string(value: int) -> str:
    return f"{value:08x}"


class Sort(Workload):
    """320 MB of keyed records, globally sorted."""

    def __init__(self, spec: WorkloadSpec = SORT) -> None:
        super().__init__(spec)

    @property
    def output_path(self) -> str:
        return f"/output/{self.spec.name.lower()}"

    # ------------------------------------------------------------------
    def generate(self, randomness: RandomSource) -> List[List[Any]]:
        record_bytes = (
            self.spec.bytes_per_input_partition / self.spec.records_per_partition
        )
        stream = randomness.stream("sort:keys")
        partitions: List[List[Any]] = []
        for _partition in range(self.spec.input_partitions):
            records = [
                (
                    _key_string(stream.randrange(_KEY_SPACE)),
                    SizedRecord(None, natural_size=record_bytes),
                )
                for _ in range(self.spec.records_per_partition)
            ]
            partitions.append(records)
        return partitions

    def sample_keys(self, randomness: RandomSource) -> List[str]:
        """Representative keys for the range partitioner (the stand-in
        for Spark's sampling pre-pass; keys are uniform in the space)."""
        stream = randomness.stream("sort:samples")
        return [_key_string(stream.randrange(_KEY_SPACE)) for _ in range(1000)]

    # ------------------------------------------------------------------
    def build(self, context: ClusterContext) -> RDD:
        data = context.text_file(self.input_path)
        parsed = data.map(lambda record: record, name="parse")
        return parsed.sort_by_key(
            sample_keys=self.sample_keys(context.randomness),
            num_partitions=self.spec.reduce_partitions,
        )

    def run(self, context: ClusterContext) -> None:
        self.build(context).save_as_file(self.output_path)
        return None

    # ------------------------------------------------------------------
    def reference_result(self, partitions: Sequence[List[Any]]) -> List[str]:
        """Ground truth: all keys in sorted order."""
        keys = [key for partition in partitions for key, _value in partition]
        return sorted(keys)
