"""WordCount: the simplest workload, a single reduceByKey shuffle.

Program (HiBench equivalent)::

    text.flatMap(tokenize).reduceByKey(add).collect()

Input documents are bags of word-bucket counts (3.2 GB of text at paper
scale).  ``flat_map`` emits one ``(bucket, SizedRecord(count, bytes))``
pair per distinct bucket per document; map-side combine merges buckets
within each partition before the shuffle, exactly like Spark's combiner,
so the shuffle volume is the per-partition distinct vocabulary — the
realistic WordCount regime where shuffle input is much smaller than raw
input.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Sequence

from repro.cluster.context import ClusterContext
from repro.rdd.rdd import RDD
from repro.rdd.size_estimator import SizedRecord
from repro.simulation.random_source import RandomSource
from repro.workloads.base import Workload, merge_counts
from repro.workloads.specs import WORDCOUNT, WorkloadSpec
from repro.workloads.text_gen import TextGenerator


class WordCount(Workload):
    """3.2 GB text -> (word bucket, total count)."""

    def __init__(
        self,
        spec: WorkloadSpec = WORDCOUNT,
        generator: TextGenerator | None = None,
    ) -> None:
        super().__init__(spec)
        self.generator = generator if generator is not None else TextGenerator()

    # ------------------------------------------------------------------
    def generate(self, randomness: RandomSource) -> List[List[Any]]:
        doc_bytes = self.spec.bytes_per_input_partition / self.spec.records_per_partition
        partitions: List[List[Any]] = []
        for partition in range(self.spec.input_partitions):
            docs = self.generator.documents(
                randomness,
                f"wordcount:p{partition}",
                self.spec.records_per_partition,
            )
            partitions.append(
                [SizedRecord(doc, natural_size=doc_bytes) for doc in docs]
            )
        return partitions

    # ------------------------------------------------------------------
    def build(self, context: ClusterContext) -> RDD:
        bucket_bytes = self.generator.bucket_bytes

        def tokenize(document: SizedRecord):
            for bucket, count in document.payload.items():
                yield (bucket, SizedRecord(count, natural_size=bucket_bytes))

        text = context.text_file(self.input_path)
        pairs = text.flat_map(tokenize, name="tokenize")
        return pairs.reduce_by_key(
            merge_counts, num_partitions=self.spec.reduce_partitions
        )

    def run(self, context: ClusterContext) -> List[Any]:
        return self.build(context).collect()

    # ------------------------------------------------------------------
    def reference_result(
        self, partitions: Sequence[List[Any]]
    ) -> Dict[str, int]:
        """Plain-Python ground truth: bucket -> total count."""
        totals: Counter = Counter()
        for partition in partitions:
            for document in partition:
                totals.update(document.payload)
        return dict(totals)

    @staticmethod
    def result_to_counts(result: List[Any]) -> Dict[str, int]:
        """Convert collected (bucket, SizedRecord) pairs to plain counts."""
        return {bucket: value.payload for bucket, value in result}
