"""PageRank: the iterative, multi-shuffle machine-learning workload.

Program (HiBench equivalent)::

    links = edges.groupByKey().cache()
    ranks = links.mapValues(lambda _: 1.0)
    for _ in range(3):
        contribs = links.join(ranks).flatMap(spread_rank)
        ranks = contribs.reduceByKey(add).mapValues(damping)
    ranks.collect()

The 500,000-page web graph is represented as a super-node graph: each
super-page stands for a bucket of real pages, each super-edge carries
the logical bytes of its bucket's adjacency lists.  Every iteration
re-shuffles the (cached) links for the join plus the rank contributions,
so PageRank is the workload where aggregation pays off most: once the
first shuffle lands in one datacenter, every later shuffle is local —
the paper reports a 91.3 % cross-datacenter traffic reduction (§V-C).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.cluster.context import ClusterContext
from repro.rdd.rdd import RDD
from repro.rdd.size_estimator import SizedRecord
from repro.simulation.random_source import RandomSource
from repro.workloads.base import Workload, add_weighted
from repro.workloads.specs import (
    PAGERANK,
    PAGERANK_ITERATIONS,
    PAGERANK_PAGES,
    WorkloadSpec,
)

# Super-graph shape: buckets of real pages and their logical volumes.
_SUPER_PAGES = 600
_DAMPING = 0.85
# Real bytes of all rank entries (500 k pages x ~16 B).
_TOTAL_RANK_BYTES = PAGERANK_PAGES * 16.0
# Real bytes of one iteration's rank contributions (edges x ~16 B).
_TOTAL_CONTRIB_BYTES = PAGERANK_PAGES * 10 * 16.0


class PageRank(Workload):
    """500 k pages, 3 power iterations over a cached link structure."""

    def __init__(
        self,
        spec: WorkloadSpec = PAGERANK,
        iterations: int = PAGERANK_ITERATIONS,
    ) -> None:
        super().__init__(spec)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self.num_edges = spec.input_partitions * spec.records_per_partition
        self.edge_bytes = spec.total_input_bytes / self.num_edges
        self.rank_bytes = _TOTAL_RANK_BYTES / _SUPER_PAGES
        self.contrib_bytes = _TOTAL_CONTRIB_BYTES / self.num_edges

    # ------------------------------------------------------------------
    def generate(self, randomness: RandomSource) -> List[List[Any]]:
        """Random super-edges: (src page, SizedRecord(dst page, bytes))."""
        stream = randomness.stream("pagerank:edges")
        partitions: List[List[Any]] = []
        for _partition in range(self.spec.input_partitions):
            records = []
            for _ in range(self.spec.records_per_partition):
                src = stream.randrange(_SUPER_PAGES)
                dst = stream.randrange(_SUPER_PAGES)
                records.append(
                    (src, SizedRecord(dst, natural_size=self.edge_bytes))
                )
            partitions.append(records)
        return partitions

    # ------------------------------------------------------------------
    def build(self, context: ClusterContext) -> RDD:
        reduce_partitions = self.spec.reduce_partitions
        rank_bytes = self.rank_bytes
        contrib_bytes = self.contrib_bytes

        edges = context.text_file(self.input_path)
        links = edges.group_by_key(num_partitions=reduce_partitions).cache()
        ranks = links.map_values(
            lambda _neighbors: SizedRecord(1.0, natural_size=rank_bytes)
        )

        def spread_rank(record):
            _src, (neighbor_lists, rank_values) = record
            neighbors = [n for lst in neighbor_lists for n in lst]
            if not neighbors or not rank_values:
                return
            share = rank_values[0].payload / len(neighbors)
            for neighbor in neighbors:
                yield (
                    neighbor.payload,
                    SizedRecord(share, natural_size=contrib_bytes),
                )

        for _iteration in range(self.iterations):
            contribs = links.cogroup(
                ranks, num_partitions=reduce_partitions
            ).flat_map(spread_rank, name="contrib")
            summed = contribs.reduce_by_key(
                add_weighted, num_partitions=reduce_partitions
            )
            ranks = summed.map_values(
                lambda value: SizedRecord(
                    (1 - _DAMPING) + _DAMPING * value.payload,
                    natural_size=rank_bytes,
                )
            )
        return ranks

    def run(self, context: ClusterContext) -> List[Any]:
        return self.build(context).collect()

    # ------------------------------------------------------------------
    def reference_result(
        self, partitions: Sequence[List[Any]]
    ) -> Dict[int, float]:
        """Plain-Python power iteration over the same super-graph."""
        adjacency: Dict[int, List[int]] = {}
        for partition in partitions:
            for src, dst_record in partition:
                adjacency.setdefault(src, []).append(dst_record.payload)
        ranks = {src: 1.0 for src in adjacency}
        for _ in range(self.iterations):
            contribs: Dict[int, float] = {}
            for src, neighbors in adjacency.items():
                rank = ranks.get(src)
                if rank is None or not neighbors:
                    continue
                share = rank / len(neighbors)
                for neighbor in neighbors:
                    contribs[neighbor] = contribs.get(neighbor, 0.0) + share
            ranks = {
                page: (1 - _DAMPING) + _DAMPING * total
                for page, total in contribs.items()
            }
        return ranks

    @staticmethod
    def result_to_ranks(result: List[Any]) -> Dict[int, float]:
        return {page: value.payload for page, value in result}
