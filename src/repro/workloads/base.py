"""Workload base class and shared record helpers.

A :class:`Workload` separates three concerns so the experiment harness
can reuse generated data across the three schemes being compared:

* :meth:`generate` — produce the input partitions (pure data, seeded);
* :meth:`install` — write those partitions into a cluster's DFS with a
  chosen block placement;
* :meth:`build` — construct the RDD program on a context;
* :meth:`run` — execute the action and return its result.

Record conventions
------------------
Coarse input records use :class:`SizedRecord` to carry paper-scale byte
volumes.  Intermediate key-value records whose real-world cardinality is
huge are *bucketised*: one simulated key stands for a bucket of real
keys, and its value is a ``SizedRecord(count, bucket_bytes)`` whose size
is the represented real bytes.  Merging two observations of the same
bucket adds the payloads and keeps the maximum size (the real merged
entry set does not grow when the same bucket of words is combined) —
see :func:`merge_counts`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.cluster.context import ClusterContext
from repro.errors import WorkloadError
from repro.rdd.rdd import RDD
from repro.rdd.size_estimator import SizedRecord
from repro.simulation.random_source import RandomSource
from repro.workloads.specs import WorkloadSpec


def merge_counts(left: SizedRecord, right: SizedRecord) -> SizedRecord:
    """Merge two bucketised count values: payloads add, sizes saturate."""
    return SizedRecord(
        left.payload + right.payload,
        max(left.natural_size, right.natural_size),
    )


def add_weighted(left: SizedRecord, right: SizedRecord) -> SizedRecord:
    """Merge two bucketised numeric contributions (e.g. PageRank mass)."""
    return SizedRecord(
        left.payload + right.payload,
        max(left.natural_size, right.natural_size),
    )


class Workload:
    """One benchmark: data generation plus the RDD program."""

    spec: WorkloadSpec

    def __init__(self, spec: WorkloadSpec) -> None:
        spec.validate()
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def input_path(self) -> str:
        return f"/input/{self.spec.name.lower()}"

    # ------------------------------------------------------------------
    # Data generation and installation
    # ------------------------------------------------------------------
    def generate(self, randomness: RandomSource) -> List[List[Any]]:
        """Produce the input partitions (one list of records per block)."""
        raise NotImplementedError

    def install(
        self,
        context: ClusterContext,
        partitions: Sequence[List[Any]],
        placement_hosts: Optional[Sequence[str]] = None,
    ) -> None:
        """Write generated partitions into the context's DFS."""
        if len(partitions) != self.spec.input_partitions:
            raise WorkloadError(
                f"{self.name}: expected {self.spec.input_partitions} "
                f"partitions, got {len(partitions)}"
            )
        context.write_input_file(
            self.input_path, partitions, placement_hosts=placement_hosts
        )

    # ------------------------------------------------------------------
    # Program
    # ------------------------------------------------------------------
    def build(self, context: ClusterContext) -> RDD:
        """Construct the job's final RDD on ``context``."""
        raise NotImplementedError

    def run(self, context: ClusterContext) -> Any:
        """Execute the workload's action; returns the action result."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Validation hook used by tests
    # ------------------------------------------------------------------
    def reference_result(self, partitions: Sequence[List[Any]]) -> Any:
        """Ground-truth result computed with plain Python (optional)."""
        raise NotImplementedError(
            f"{self.name} does not provide a reference result"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name}>"
