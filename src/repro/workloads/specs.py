"""Table I workload specifications, plus simulation-scale parameters.

The paper's Table I (HiBench "large scale"):

=============  ==========================================================
Workload       Specification
=============  ==========================================================
WordCount      total generated input 3.2 GB
Sort           total generated input 320 MB
TeraSort       32 million records, 100 bytes each (3.2 GB)
PageRank       500,000 pages, at most 3 iterations
NaiveBayes     100,000 pages, 100 classes
=============  ==========================================================

Record counts are scaled down for simulation (each simulated record
carries the logical byte volume of many real records via
:class:`~repro.rdd.size_estimator.SizedRecord`); all byte volumes remain
at paper scale.  The per-workload ``cpu_bytes_per_second`` captures how
CPU-intensive each workload's processing is per input byte (text parsing
is far slower than moving binary sort records), a real HiBench
distinction that sets the compute/network balance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

GB = 1_000_000_000.0
MB = 1_000_000.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one benchmark workload."""

    name: str
    total_input_bytes: float
    input_partitions: int
    reduce_partitions: int
    # Per-core CPU streaming rate for this workload's operators.
    cpu_bytes_per_second: float
    # Simulation granularity: how many records represent the input.
    records_per_partition: int

    def validate(self) -> None:
        if self.total_input_bytes <= 0:
            raise WorkloadError(f"{self.name}: input bytes must be positive")
        if self.input_partitions < 1 or self.reduce_partitions < 1:
            raise WorkloadError(f"{self.name}: partition counts must be >= 1")
        if self.records_per_partition < 1:
            raise WorkloadError(f"{self.name}: need at least one record")

    @property
    def bytes_per_input_partition(self) -> float:
        return self.total_input_bytes / self.input_partitions


# Two map partitions per worker host of the Fig. 6 cluster (24 workers,
# ~66 MB blocks for the 3.2 GB inputs — comparable to HDFS block
# granularity); with input spread this thin no single host holds the
# 20 % of a reducer's input needed for a locality preference, matching
# the paper's regime where the stock scheduler scatters reducers.
# Reduce parallelism is 8, "as there are 8 cores available within each
# datacenter" (§V-A).
_INPUT_PARTITIONS = 48
_REDUCE_PARTITIONS = 8

WORDCOUNT = WorkloadSpec(
    name="WordCount",
    total_input_bytes=3.2 * GB,
    input_partitions=_INPUT_PARTITIONS,
    reduce_partitions=_REDUCE_PARTITIONS,
    cpu_bytes_per_second=8e6,    # text tokenisation is CPU-heavy
    records_per_partition=2,     # documents (bags of words)
)

SORT = WorkloadSpec(
    name="Sort",
    total_input_bytes=320 * MB,
    input_partitions=_INPUT_PARTITIONS,
    reduce_partitions=_REDUCE_PARTITIONS,
    cpu_bytes_per_second=3e6,    # parse + serialize binary records
    records_per_partition=100,
)

TERASORT = WorkloadSpec(
    name="TeraSort",
    total_input_bytes=3.2 * GB,  # 32 M records x 100 B
    input_partitions=_INPUT_PARTITIONS,
    reduce_partitions=_REDUCE_PARTITIONS,
    cpu_bytes_per_second=8e6,
    records_per_partition=150,
)

# The HiBench TeraSort map materialises (key, value) pairs with
# partitioning metadata, inflating the shuffle input beyond the raw
# input ("there is a map transformation before all shuffles, which
# actually bloats the input data size", §V-B).
TERASORT_BLOAT_FACTOR = 1.25

PAGERANK = WorkloadSpec(
    name="PageRank",
    total_input_bytes=300 * MB,  # edge list text for 500 k pages
    input_partitions=_INPUT_PARTITIONS,
    reduce_partitions=_REDUCE_PARTITIONS,
    cpu_bytes_per_second=12e6,
    records_per_partition=150,   # super-edges
)

PAGERANK_ITERATIONS = 3          # Table I: at most 3 iterations
PAGERANK_PAGES = 500_000

NAIVE_BAYES = WorkloadSpec(
    name="NaiveBayes",
    total_input_bytes=1.0 * GB,  # 100 k pages of classified text
    input_partitions=_INPUT_PARTITIONS,
    reduce_partitions=_REDUCE_PARTITIONS,
    cpu_bytes_per_second=8e6,
    records_per_partition=2,     # classified documents
)

NAIVE_BAYES_CLASSES = 100        # Table I
NAIVE_BAYES_PAGES = 100_000

ALL_SPECS = (WORDCOUNT, SORT, TERASORT, PAGERANK, NAIVE_BAYES)


def spec_by_name(name: str) -> WorkloadSpec:
    for spec in ALL_SPECS:
        if spec.name.lower() == name.lower():
            return spec
    raise WorkloadError(f"unknown workload {name!r}")
