"""Seeded multi-tenant job-arrival generation for shared-cluster runs.

A *stream* is a sequence of small analytics jobs arriving over simulated
time, each owned by a tenant.  Streams are described declaratively
(:class:`StreamSpec`) and expanded into concrete :class:`JobArrival`
lists by :func:`generate_arrivals`, which draws every random quantity
from one named :class:`~repro.simulation.random_source.RandomSource`
stream — so the same ``(spec, seed)`` pair always yields the identical
schedule, whether the run executes serially, fanned out per cell, or
sharded (property-tested in ``tests/experiments``).

Arrival processes
-----------------
* ``poisson`` — memoryless inter-arrival gaps at ``rate_per_minute``.
* ``bursty``  — a trace-shaped on/off modulation: a fraction of jobs
  arrive inside high-rate bursts (rate x ``burst_factor``), the rest in
  quiet valleys, approximating the diurnal production traces wide-area
  analytics clusters see.

Job shapes are scaled-down versions of the Table I workload specs: each
arrival carries a :class:`JobTemplate` naming the spec that shaped it, a
deterministic byte volume (log-uniform skew, so SJF has something to
exploit), and a home datacenter (what the locality-packing policy uses).
The template builds a self-contained parallelize -> shuffle -> collect
program, cheap enough that thousands of queued jobs simulate quickly
while still moving tenant-attributed bytes through the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.rdd.size_estimator import SizedRecord
from repro.simulation.random_source import RandomSource
from repro.workloads.base import merge_counts
from repro.workloads.specs import ALL_SPECS, WorkloadSpec, spec_by_name

ARRIVAL_PROCESSES = ("poisson", "bursty")

# Mini-job scale: a stream job moves about 1/64th of its shaping spec's
# bytes, spread over a handful of partitions — big enough to contend on
# WAN links, small enough that 10k-job streams stay tractable.
_SCALE_DOWN = 64.0
_JOB_MAP_PARTITIONS = 4
_JOB_REDUCE_PARTITIONS = 4
_RECORDS_PER_PARTITION = 2


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a shared cluster.

    ``weight`` drives both the WAN fair-share weighting (every flow of
    the tenant's jobs gets this weight in the max-min allocation) and
    the fair policy's executor-pool share; ``share`` is the tenant's
    relative probability of owning each arriving job (the workload mix
    knob, independent of priority).
    """

    name: str
    weight: float = 1.0
    share: float = 1.0

    def validate(self) -> None:
        if not self.name:
            raise WorkloadError("tenant name must be non-empty")
        if self.weight <= 0:
            raise WorkloadError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )
        if self.share <= 0:
            raise WorkloadError(
                f"tenant {self.name!r}: share must be > 0, got {self.share}"
            )


@dataclass(frozen=True)
class ArrivalSpec:
    """How jobs arrive over simulated time."""

    process: str = "poisson"
    rate_per_minute: float = 12.0
    num_jobs: int = 100
    # Bursty-process shape: ``burst_fraction`` of the jobs arrive in
    # bursts running at ``burst_factor`` x the base rate.
    burst_factor: float = 4.0
    burst_fraction: float = 0.25
    # Workload mix: names of the Table I specs shaping job sizes
    # (empty = all five).
    mix: Tuple[str, ...] = ()

    def validate(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise WorkloadError(
                f"unknown arrival process {self.process!r} "
                f"(choose from: {', '.join(ARRIVAL_PROCESSES)})"
            )
        if self.rate_per_minute <= 0:
            raise WorkloadError(
                f"arrival rate must be > 0 jobs/min, got {self.rate_per_minute}"
            )
        if self.num_jobs < 1:
            raise WorkloadError(
                f"num_jobs must be >= 1, got {self.num_jobs}"
            )
        if self.burst_factor < 1.0:
            raise WorkloadError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if not 0.0 <= self.burst_fraction <= 1.0:
            raise WorkloadError(
                f"burst_fraction must be in [0, 1], got {self.burst_fraction}"
            )
        for name in self.mix:
            spec_by_name(name)  # raises WorkloadError on unknown names


@dataclass(frozen=True)
class JobTemplate:
    """A concrete mini job shaped by one Table I workload spec."""

    name: str
    shaped_by: str
    total_bytes: float
    map_partitions: int = _JOB_MAP_PARTITIONS
    reduce_partitions: int = _JOB_REDUCE_PARTITIONS
    home_dc: str = ""

    @property
    def estimated_input_bytes(self) -> float:
        """What SJF orders on (known at submission, like input stats)."""
        return self.total_bytes

    def build(self, context) -> Any:
        """The job's final RDD on ``context``: a parallelize -> keyed
        shuffle -> collect program whose bytes match the template."""
        num_records = self.map_partitions * _RECORDS_PER_PARTITION
        per_record = self.total_bytes / num_records
        records = [
            (index % self.reduce_partitions, SizedRecord(1, per_record))
            for index in range(num_records)
        ]
        return (
            context.parallelize(records, num_slices=self.map_partitions)
            .reduce_by_key(merge_counts, num_partitions=self.reduce_partitions)
        )


@dataclass(frozen=True)
class JobArrival:
    """One job of the stream: who, when, and what shape."""

    index: int
    tenant: str
    arrival_time: float
    template: JobTemplate


@dataclass(frozen=True)
class StreamSpec:
    """A full multi-tenant stream: arrivals + tenants + policy knobs.

    Picklable and purely declarative, so experiment plans carrying one
    ship unchanged to worker processes; the arrivals themselves are
    regenerated deterministically inside each cell.
    """

    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    tenants: Tuple[TenantSpec, ...] = (TenantSpec("default"),)
    policy: str = "fifo"
    max_concurrent: int = 4

    def validate(self) -> None:
        self.arrival.validate()
        if not self.tenants:
            raise WorkloadError("a stream needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate tenant names: {names}")
        for tenant in self.tenants:
            tenant.validate()
        if self.max_concurrent < 1:
            raise WorkloadError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )


def _mix_specs(arrival: ArrivalSpec) -> Sequence[WorkloadSpec]:
    if not arrival.mix:
        return ALL_SPECS
    return [spec_by_name(name) for name in arrival.mix]


def generate_arrivals(
    spec: StreamSpec,
    datacenters: Sequence[str],
    randomness: RandomSource,
) -> List[JobArrival]:
    """Expand ``spec`` into a concrete, deterministic arrival schedule.

    Every draw comes from the single ``"arrivals"`` stream of
    ``randomness``, in a fixed order per job — adding draws elsewhere in
    the simulation never perturbs the schedule, and the same seed yields
    byte-identical arrivals in every runner (serial, parallel, sharded).
    """
    spec.validate()
    if not datacenters:
        raise WorkloadError("generate_arrivals: need at least one datacenter")
    arrival = spec.arrival
    rng = randomness.stream("arrivals")
    shapes = _mix_specs(arrival)
    tenant_names = [tenant.name for tenant in spec.tenants]
    tenant_shares = [tenant.share for tenant in spec.tenants]
    base_rate = arrival.rate_per_minute / 60.0  # jobs per second

    arrivals: List[JobArrival] = []
    now = 0.0
    for index in range(arrival.num_jobs):
        if arrival.process == "bursty" and rng.random() < arrival.burst_fraction:
            rate = base_rate * arrival.burst_factor
        else:
            rate = base_rate
        now += rng.expovariate(rate)
        tenant = rng.choices(tenant_names, weights=tenant_shares, k=1)[0]
        shape = shapes[rng.randrange(len(shapes))]
        # Log-uniform size skew over [1/4x, 4x] of the scaled-down spec
        # volume: a heavy tail SJF can exploit and FIFO suffers under.
        size_factor = 4.0 ** rng.uniform(-1.0, 1.0)
        total_bytes = shape.total_input_bytes / _SCALE_DOWN * size_factor
        home_dc = datacenters[rng.randrange(len(datacenters))]
        template = JobTemplate(
            name=f"job{index}:{shape.name.lower()}",
            shaped_by=shape.name,
            total_bytes=total_bytes,
            home_dc=home_dc,
        )
        arrivals.append(
            JobArrival(
                index=index,
                tenant=tenant,
                arrival_time=now,
                template=template,
            )
        )
    return arrivals
