"""TeraSort: a full-data shuffle whose map stage *bloats* the data.

Program (HiBench equivalent)::

    records.map(attach_partition_metadata).sortByKey().saveAsFile()

The HiBench implementation materialises (key, value) pairs with extra
partitioning metadata before the shuffle, so the shuffle input is
*larger* than the 3.2 GB raw input.  This is the paper's §V-B anomaly:
automatic aggregation then pushes the bloated dataset across
datacenters, and the Centralized scheme — which ships the smaller raw
input — needs the least cross-datacenter traffic of the three (Fig. 8),
with AggShuffle's job-completion advantage shrinking to ~4 %.

The paper's prescribed fix is an *explicit* ``transfer_to()`` before the
bloating map (§V-B); :meth:`TeraSort.build_with_explicit_transfer`
implements exactly that and is evaluated as an ablation.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.cluster.context import ClusterContext
from repro.rdd.rdd import RDD
from repro.rdd.size_estimator import SizedRecord
from repro.simulation.random_source import RandomSource
from repro.workloads.base import Workload
from repro.workloads.specs import TERASORT, TERASORT_BLOAT_FACTOR, WorkloadSpec

_KEY_SPACE = 16 ** 8


def _key_string(value: int) -> str:
    return f"{value:08x}"


class TeraSort(Workload):
    """32 M x 100 B records, sorted, with a bloating pre-shuffle map."""

    def __init__(
        self,
        spec: WorkloadSpec = TERASORT,
        bloat_factor: float = TERASORT_BLOAT_FACTOR,
    ) -> None:
        super().__init__(spec)
        if bloat_factor <= 0:
            raise ValueError("bloat_factor must be positive")
        self.bloat_factor = bloat_factor

    @property
    def output_path(self) -> str:
        return f"/output/{self.spec.name.lower()}"

    # ------------------------------------------------------------------
    def generate(self, randomness: RandomSource) -> List[List[Any]]:
        record_bytes = (
            self.spec.bytes_per_input_partition / self.spec.records_per_partition
        )
        stream = randomness.stream("terasort:keys")
        partitions: List[List[Any]] = []
        for _partition in range(self.spec.input_partitions):
            partitions.append(
                [
                    (
                        _key_string(stream.randrange(_KEY_SPACE)),
                        SizedRecord(None, natural_size=record_bytes),
                    )
                    for _ in range(self.spec.records_per_partition)
                ]
            )
        return partitions

    def sample_keys(self, randomness: RandomSource) -> List[str]:
        stream = randomness.stream("terasort:samples")
        return [_key_string(stream.randrange(_KEY_SPACE)) for _ in range(1000)]

    # ------------------------------------------------------------------
    def _bloating_map(self):
        factor = self.bloat_factor

        def attach_metadata(record):
            key, value = record
            return (
                key,
                SizedRecord(value.payload, natural_size=value.natural_size * factor),
            )

        return attach_metadata

    def build(self, context: ClusterContext) -> RDD:
        records = context.text_file(self.input_path)
        bloated = records.map(self._bloating_map(), name="teragen-map")
        return bloated.sort_by_key(
            sample_keys=self.sample_keys(context.randomness),
            num_partitions=self.spec.reduce_partitions,
        )

    def build_with_explicit_transfer(
        self, context: ClusterContext, destination: Optional[str] = None
    ) -> RDD:
        """The developer fix from §V-B: transfer *raw* input first, then
        bloat inside the aggregator datacenter."""
        records = context.text_file(self.input_path)
        moved = records.transfer_to(destination_datacenter=destination)
        bloated = moved.map(self._bloating_map(), name="teragen-map")
        return bloated.sort_by_key(
            sample_keys=self.sample_keys(context.randomness),
            num_partitions=self.spec.reduce_partitions,
        )

    def run(self, context: ClusterContext) -> None:
        self.build(context).save_as_file(self.output_path)
        return None

    # ------------------------------------------------------------------
    def reference_result(self, partitions: Sequence[List[Any]]) -> List[str]:
        keys = [key for partition in partitions for key, _value in partition]
        return sorted(keys)
