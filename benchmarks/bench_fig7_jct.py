"""Fig. 7 — average job completion time per workload and scheme.

Regenerates the paper's Fig. 7: for each of the five HiBench workloads
and each of {Spark, Centralized, AggShuffle}, the 10 %-trimmed mean job
completion time over the seed repetitions, with the median and
interquartile range the paper draws as error bars.

Expected shape (the paper's findings):
* AggShuffle has the lowest completion time for every workload
  (14-73 % below Spark in the paper);
* AggShuffle's interquartile range is the narrowest (stability);
* Centralized pays a large early cost for big-input workloads.
"""

from benchmarks.matrix_cache import emit, get_matrix
from repro.experiments.figures import fig7_job_completion_times

_SCHEMES = ("Spark", "Centralized", "AggShuffle")


def _render(figure) -> list:
    lines = [
        "Fig. 7 — job completion time (seconds), trimmed mean "
        "[median, q25-q75]",
        f"{'workload':<12}" + "".join(f"{s:>28}" for s in _SCHEMES),
    ]
    for workload in ("WordCount", "Sort", "TeraSort", "PageRank", "NaiveBayes"):
        if workload not in figure:
            continue
        cells = []
        for scheme in _SCHEMES:
            stats = figure[workload][scheme]
            cells.append(
                f"{stats.trimmed:9.1f} [{stats.median:7.1f},"
                f" {stats.q25:6.1f}-{stats.q75:6.1f}]"
            )
        lines.append(f"{workload:<12}" + "".join(f"{c:>28}" for c in cells))
    return lines


def test_fig7_job_completion_time(benchmark):
    figure = benchmark.pedantic(
        lambda: fig7_job_completion_times(get_matrix()),
        rounds=1,
        iterations=1,
    )
    emit("fig7_jct.txt", _render(figure))
    # Shape assertions: AggShuffle beats Spark on every workload.
    for workload, by_scheme in figure.items():
        assert (
            by_scheme["AggShuffle"].trimmed < by_scheme["Spark"].trimmed
        ), f"{workload}: AggShuffle should finish first"
