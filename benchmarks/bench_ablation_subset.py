"""Ablation — aggregating into k datacenters instead of one.

§III-B aggregates "to a subset of datacenters ... without loss of
generality, to a single datacenter as an example".  This ablation
sweeps the subset size k for the Sort workload: k=1 minimises cross-DC
traffic in later stages; larger k spreads receiver load but re-scatters
shuffle input.
"""

import dataclasses
import os

from benchmarks.matrix_cache import emit
from repro.cluster.builder import ec2_six_region_spec
from repro.cluster.context import ClusterContext
from repro.config import ShuffleConfig
from repro.experiments.placement import skewed_block_placement
from repro.experiments.runner import generated_input
from repro.experiments.schemes import Scheme, config_for_scheme
from repro.simulation import RandomSource
from repro.workloads import Sort


def _run_with_subset(subset_size: int, seed: int):
    workload = Sort()
    spec = ec2_six_region_spec()
    config = config_for_scheme(Scheme.AGGSHUFFLE, workload.spec, seed)
    config = dataclasses.replace(
        config,
        shuffle=ShuffleConfig(
            push_based=True,
            auto_aggregate=True,
            aggregation_subset_size=subset_size,
        ),
    )
    context = ClusterContext(spec, config)
    partitions = generated_input(workload, seed)
    placement = skewed_block_placement(
        spec, RandomSource(seed).child("placement:Sort"), len(partitions)
    )
    workload.install(context, partitions, placement_hosts=placement)
    started = context.sim.now
    workload.run(context)
    duration = context.sim.now - started
    traffic = context.traffic.cross_dc_megabytes
    context.shutdown()
    return duration, traffic


def test_aggregation_subset_sweep(benchmark):
    seeds = range(max(1, int(os.environ.get("REPRO_SEEDS", "10")) // 2))
    subset_sizes = (1, 2, 3, 6)

    def sweep():
        rows = {}
        for k in subset_sizes:
            runs = [_run_with_subset(k, seed) for seed in seeds]
            rows[k] = (
                sum(d for d, _t in runs) / len(runs),
                sum(t for _d, t in runs) / len(runs),
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation — aggregation subset size k (Sort workload)",
        f"{'k':>3}{'JCT (s)':>10}{'cross-DC MB':>14}",
    ]
    for k, (jct, traffic) in rows.items():
        lines.append(f"{k:>3}{jct:>10.1f}{traffic:>14.1f}")
    emit("ablation_subset.txt", lines)
    # k=1 moves less later-stage data than scattering over all 6 DCs.
    assert rows[1][1] <= rows[6][1] * 1.25
