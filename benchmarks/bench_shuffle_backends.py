"""Shuffle-backend comparison: WAN bytes and JCT across the data paths.

Runs TeraSort — the paper's most shuffle-bound workload (§V-B) — under
every backend-only scheme (fetch / push_aggregate / pre_merge) and
reports, per backend: mean job completion time, the traffic monitor's
cross-datacenter megabytes, and the backend's own perf counters (WAN vs
intra-DC bytes, blocks fetched/pushed, merge rounds and fan-in).

Also the counter regression guard for CI smoke runs: every backend must
report non-zero work, so a wiring bug that stops counters from being
fed fails here rather than silently zeroing the comparison.

Environment knobs: ``REPRO_SEEDS`` (default 3), ``REPRO_JOBS``.
"""

from __future__ import annotations

import os
from typing import Dict, List

from benchmarks.matrix_cache import emit
from repro.experiments.runner import (
    ExperimentPlan,
    RunResult,
    run_matrix_parallel,
)
from repro.experiments.schemes import SCHEME_REGISTRY, scheme_spec
from repro.workloads import workload_by_name

# Every scheme that is purely a shuffle backend, registry-enumerated:
# a newly registered backend joins this comparison automatically.
BACKEND_SCHEMES = tuple(
    spec.scheme for spec in SCHEME_REGISTRY.values() if spec.preprocess is None
)


def _seed_count() -> int:
    return int(os.environ.get("REPRO_SEEDS", "3"))


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def _build_matrix() -> List[RunResult]:
    plan = ExperimentPlan(seeds=tuple(range(_seed_count())))
    return run_matrix_parallel(
        [workload_by_name("terasort")], list(BACKEND_SCHEMES), plan, jobs=None
    )


def _by_backend(matrix: List[RunResult]) -> Dict[str, List[RunResult]]:
    grouped: Dict[str, List[RunResult]] = {}
    for result in matrix:
        grouped.setdefault(result.backend, []).append(result)
    return grouped


def _render(grouped: Dict[str, List[RunResult]]) -> List[str]:
    header = (
        f"{'backend':<16}{'JCT (s)':>10}{'xDC MB':>10}{'WAN MB':>10}"
        f"{'intra MB':>10}{'fetched':>9}{'pushed':>8}{'merges':>8}"
        f"{'fan-in':>8}"
    )
    lines = [
        "Shuffle backends on TeraSort "
        f"(mean over {_seed_count()} seeds)",
        header,
    ]
    for backend, runs in grouped.items():
        perf = [r.shuffle_perf for r in runs]
        lines.append(
            f"{backend:<16}"
            f"{_mean([r.duration for r in runs]):10.1f}"
            f"{_mean([r.cross_dc_megabytes for r in runs]):10.1f}"
            f"{_mean([p['wan_bytes'] for p in perf]) / 1e6:10.1f}"
            f"{_mean([p['intra_dc_bytes'] for p in perf]) / 1e6:10.1f}"
            f"{_mean([p['blocks_fetched'] for p in perf]):9.0f}"
            f"{_mean([p['blocks_pushed'] for p in perf]):8.0f}"
            f"{_mean([p['merge_rounds'] for p in perf]):8.0f}"
            f"{_mean([p['mean_merge_fan_in'] for p in perf]):8.1f}"
        )
    return lines


def test_shuffle_backend_comparison(benchmark):
    matrix = benchmark.pedantic(_build_matrix, rounds=1, iterations=1)
    grouped = _by_backend(matrix)
    emit("shuffle_backends.txt", _render(grouped))

    assert set(grouped) == {
        scheme_spec(s).backend for s in BACKEND_SCHEMES
    }
    for backend, runs in grouped.items():
        for result in runs:
            perf = result.shuffle_perf
            # Counters must never silently regress to zero.
            assert perf["map_outputs_registered"] > 0, backend
            assert perf["reduce_reads"] > 0, backend
            assert perf["network_bytes"] > 0, backend
            # The monitor cannot see fewer cross-DC bytes than the
            # backend claims to have pushed over the WAN.
            assert perf["wan_bytes"] / 1e6 <= (
                result.cross_dc_megabytes * (1 + 1e-9)
            ), backend

    push = grouped["push_aggregate"]
    assert all(r.shuffle_perf["blocks_pushed"] > 0 for r in push)
    merged = grouped["pre_merge"]
    assert all(r.shuffle_perf["merge_rounds"] > 0 for r in merged)
    assert all(r.shuffle_perf["mean_merge_fan_in"] > 1 for r in merged)
    # Pre-merge coalesces WAN reads: strictly fewer remote blocks than
    # the per-shard fetch baseline.
    fetch = grouped["fetch"]
    assert _mean(
        [r.shuffle_perf["blocks_fetched"] for r in merged]
    ) < _mean([r.shuffle_perf["blocks_fetched"] for r in fetch])
