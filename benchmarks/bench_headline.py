"""§V headline numbers — JCT and traffic reductions of AggShuffle.

The paper's summary: "our implementation speeds up workloads from the
HiBench benchmark suite, reducing the average job completion time by
14 % ~ 73 %" and "the volume of cross-datacenter traffic can be reduced
by about 16 % ~ 90 %", with more stable (lower-variance) performance.
"""

from benchmarks.matrix_cache import emit, get_matrix
from repro.experiments.figures import headline_numbers


def _render(headline) -> list:
    lines = [
        "Headline — AggShuffle vs Spark",
        f"{'workload':<12}{'JCT red. %':>12}{'traffic red. %':>16}"
        f"{'Spark IQR':>12}{'Agg IQR':>10}",
    ]
    for workload in ("WordCount", "Sort", "TeraSort", "PageRank", "NaiveBayes"):
        if workload not in headline:
            continue
        entry = headline[workload]
        lines.append(
            f"{workload:<12}{entry['jct_reduction_pct']:12.1f}"
            f"{entry.get('traffic_reduction_pct', float('nan')):16.1f}"
            f"{entry['spark_iqr']:12.1f}{entry['aggshuffle_iqr']:10.1f}"
        )
    return lines


def test_headline_reductions(benchmark):
    headline = benchmark.pedantic(
        lambda: headline_numbers(get_matrix()),
        rounds=1,
        iterations=1,
    )
    emit("headline.txt", _render(headline))

    reductions = [
        entry["jct_reduction_pct"] for entry in headline.values()
    ]
    # Every workload improves; the best improvement is substantial.
    assert all(r > 0 for r in reductions)
    assert max(reductions) > 20.0
    # Stability: AggShuffle's spread is below Spark's for the iterative
    # workload where WAN jitter compounds (PageRank).
    pagerank = headline.get("PageRank")
    if pagerank:
        assert pagerank["aggshuffle_iqr"] <= pagerank["spark_iqr"]
