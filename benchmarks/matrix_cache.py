"""Shared run-matrix for the figure benchmarks.

Fig. 7, Fig. 8, Fig. 9, and the headline numbers all consume the same
(workload x scheme x seed) matrix on the Fig. 6 cluster.  Computing it
once per pytest session keeps ``pytest benchmarks/`` affordable; each
benchmark then times its own aggregation plus (for the first caller)
the matrix construction.

Environment knobs:

* ``REPRO_SEEDS``      — number of repetitions (default 10, as in §V-B).
* ``REPRO_WORKLOADS``  — comma-separated subset of workload names.
* ``REPRO_JOBS``       — worker processes for the run matrix (cells are
  independent seeded simulations; parallel output is identical to the
  sequential run).  Unset or <= 1 runs sequentially.
* ``REPRO_SHARDED``    — non-zero routes the matrix through
  :func:`repro.experiments.runner.run_matrix_sharded`: contiguous cell
  shards per worker plus parent-side dataset generation shipped to the
  workers, still byte-identical to the sequential run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from repro.experiments.runner import (
    ExperimentPlan,
    RunResult,
    run_matrix_parallel,
    run_matrix_sharded,
)
from repro.experiments.schemes import PAPER_SCHEMES
from repro.workloads import all_workloads

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_matrix_cache: Dict[Tuple, List[RunResult]] = {}


def seed_count() -> int:
    return int(os.environ.get("REPRO_SEEDS", "10"))


def selected_workloads():
    requested = os.environ.get("REPRO_WORKLOADS")
    workloads = all_workloads()
    if not requested:
        return workloads
    wanted = {name.strip().lower() for name in requested.split(",")}
    return [w for w in workloads if w.name.lower() in wanted]


def get_matrix(seeds: Sequence[int] | None = None) -> List[RunResult]:
    """The full evaluation matrix, computed once per process."""
    seed_tuple = tuple(seeds) if seeds is not None else tuple(
        range(seed_count())
    )
    names = tuple(w.name for w in selected_workloads())
    key = (seed_tuple, names)
    if key not in _matrix_cache:
        plan = ExperimentPlan(seeds=seed_tuple)
        # jobs=None honours REPRO_JOBS; <= 1 runs sequentially.
        runner = (
            run_matrix_sharded
            if os.environ.get("REPRO_SHARDED", "0") not in ("", "0")
            else run_matrix_parallel
        )
        _matrix_cache[key] = runner(
            selected_workloads(), list(PAPER_SCHEMES), plan, jobs=None
        )
    return _matrix_cache[key]


def write_report(filename: str, lines: Sequence[str]) -> Path:
    """Persist a benchmark's table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    return path


def emit(filename: str, lines: Sequence[str]) -> None:
    """Print a report and persist it."""
    print()
    for line in lines:
        print(line)
    write_report(filename, lines)


def emit_json(filename: str, payload: Any) -> Path:
    """Persist a machine-readable benchmark artifact alongside the text
    report (stable key order so diffs stay reviewable)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
