"""Health-aware degradation under degraded WAN links (ISSUE acceptance).

Two scenarios on the 3-datacenter chaos cluster:

* **flap** — a deep transient degrade (x0.01 for 5 s, both directions
  of the dc-a<->dc-b pair) with flow-level retry and circuit breakers
  enabled.  Every backend must finish with byte-identical output and
  **zero** stage resubmissions: the flap is absorbed entirely at the
  flow layer (cancel + re-issue), never escalated to lineage recovery.
* **outage** — a sustained outage of the elected aggregation datacenter
  (push_aggregate) and of a merger datacenter (pre_merge), with
  ``dfs_replication=2``.  Push re-elects its destination on producer
  resubmission; pre_merge recovers through lineage and re-merges (or
  leaves the layout scattered) on the survivors.  Output stays
  byte-identical either way.

Results land in ``benchmarks/results/degraded_links.txt``; CI runs this
with ``--smoke``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from benchmarks.matrix_cache import emit
from repro.cluster.builder import ClusterSpec
from repro.cluster.context import ClusterContext
from repro.config import HealthConfig, ShuffleConfig, SimulationConfig
from repro.failures import ChaosEvent, ChaosSchedule
from repro.network.topology import GBPS, MBPS

BACKENDS = ("fetch", "push_aggregate", "pre_merge")
NUM_PARTITIONS = 16
SCALE = 1e5
# Skewed input: most blocks in dc-a, one in dc-b, so reduce input
# crosses the (degraded) dc-a<->dc-b pair in every backend.
PLACEMENT = ("dc-a-w0", "dc-a-w1", "dc-a-w0", "dc-a-w1", "dc-a-w1", "dc-b-w0")

# Aggressive deadlines (tighter than fair-share contention) so the
# 5-second flap reliably produces deadline misses during the window.
RETRY_HEALTH = HealthConfig(
    flow_retry_enabled=True,
    breaker_enabled=True,
    flow_deadline_base=0.05,
    flow_deadline_multiplier=3.0,
    max_flow_retries=2,
    flow_retry_backoff=0.05,
)

FLAP = ChaosSchedule((
    ChaosEvent(at=1.0, kind="degrade", target="dc-a->dc-b",
               factor=0.01, duration=5.0),
    ChaosEvent(at=1.0, kind="degrade", target="dc-b->dc-a",
               factor=0.01, duration=5.0),
))


def _spec() -> ClusterSpec:
    return ClusterSpec(
        datacenters=("dc-a", "dc-b", "dc-c"),
        workers_per_datacenter=2,
        intra_dc_bandwidth=1 * GBPS,
        inter_dc_bandwidth=100 * MBPS,
        driver_datacenter="dc-a",
    )


def _config(backend: str | None = None, push: bool = False, chaos=None,
            replication: int = 1) -> SimulationConfig:
    return SimulationConfig(
        shuffle=ShuffleConfig(
            backend=backend, push_based=push, auto_aggregate=push
        ),
        jitter=None,
        scale_factor=SCALE,
        chaos=chaos,
        dfs_replication=replication,
        health=RETRY_HEALTH,
    )


def _run_skewed(backend: str, chaos=None) -> Tuple[ClusterContext, List]:
    context = ClusterContext(_spec(), _config(backend=backend, chaos=chaos))
    records = [(f"k{i % 29}", i) for i in range(96)]
    context.write_input_file(
        "/in",
        [records[i::6] for i in range(6)],
        placement_hosts=list(PLACEMENT),
    )
    result = sorted(
        context.text_file("/in")
        .reduce_by_key(lambda a, b: a + b, num_partitions=NUM_PARTITIONS)
        .collect()
    )
    context.shutdown()
    return context, result


def _run_transfer(chaos=None) -> Tuple[ClusterContext, List, object]:
    """The push re-election job: auto-elected aggregator is dc-b (the
    big block's primary), every block keeps a dc-c replica."""
    context = ClusterContext(
        _spec(), _config(push=True, chaos=chaos, replication=2)
    )
    context.write_input_file(
        "/in",
        [[(f"k{i}", i) for i in range(8)], [("q", 1)]],
        placement_hosts=["dc-b-w0", "dc-c-w0"],
    )
    moved = context.text_file("/in").transfer_to()
    result = sorted(moved.reduce_by_key(lambda a, b: a + b).collect())
    context.shutdown()
    return context, result, moved.transfer_dependency


def _run_balanced_pre_merge(chaos=None) -> Tuple[ClusterContext, List]:
    """pre_merge with dc-b holding two maps (so it elects a merger)
    and every block keeping a replica outside dc-b."""
    context = ClusterContext(
        _spec(), _config(backend="pre_merge", chaos=chaos, replication=2)
    )
    records = [(f"k{i % 17}", i) for i in range(72)]
    context.write_input_file(
        "/in",
        [records[i::6] for i in range(6)],
        placement_hosts=[
            "dc-a-w0", "dc-b-w0", "dc-a-w1", "dc-b-w1", "dc-c-w0", "dc-c-w1",
        ],
    )
    result = sorted(
        context.text_file("/in")
        .reduce_by_key(lambda a, b: a + b, num_partitions=NUM_PARTITIONS)
        .collect()
    )
    context.shutdown()
    return context, result


def _receiver_midpoint(context) -> float:
    spans = [
        span
        for stage in context.metrics.job.stages
        if stage.kind != "transfer_producer"
        for span in stage.tasks
    ]
    return min((span.started_at + span.finished_at) / 2.0 for span in spans)


def _run_scenarios() -> Dict:
    # ------------------------------------------------------------------
    # Scenario A: transient flap, absorbed at the flow layer
    # ------------------------------------------------------------------
    flap_rows = {}
    for backend in BACKENDS:
        clean_context, clean_result = _run_skewed(backend)
        context, result = _run_skewed(backend, chaos=FLAP)
        assert result == clean_result
        assert context.recovery.stages_resubmitted == 0
        assert context.recovery.tasks_relaunched == 0
        flap_rows[backend] = {
            "clean_jct": clean_context.metrics.job.duration,
            "chaos_jct": context.metrics.job.duration,
            "retries": context.health.flow_retries,
            "trips": context.health.breaker_trips,
            "wasted_mb": context.health.retry_wasted_bytes / 1e6,
            "resubmitted": context.recovery.stages_resubmitted,
        }
    assert flap_rows["fetch"]["retries"] > 0
    assert sum(row["retries"] for row in flap_rows.values()) > 0

    # ------------------------------------------------------------------
    # Scenario B: sustained outage of the aggregation / merger DC
    # ------------------------------------------------------------------
    clean_context, clean_result, dep = _run_transfer()
    assert getattr(dep, "resolved_destinations") == ["dc-b"]
    when = _receiver_midpoint(clean_context)
    schedule = ChaosSchedule((ChaosEvent(at=when, kind="outage", target="dc-b"),))
    context, result, dep = _run_transfer(chaos=schedule)
    assert result == clean_result
    assert context.health.reelections >= 1
    destinations = getattr(dep, "resolved_destinations")
    assert destinations and "dc-b" not in destinations
    push_row = {
        "clean_jct": clean_context.metrics.job.duration,
        "chaos_jct": context.metrics.job.duration,
        "reelections": context.health.reelections,
        "resubmitted": context.recovery.stages_resubmitted,
        "destinations": destinations,
    }

    clean_context, clean_result = _run_balanced_pre_merge()
    spans = [
        span
        for stage in clean_context.metrics.job.stages
        if stage.kind == "result"
        for span in stage.tasks
    ]
    when = min(span.started_at for span in spans) + 0.5
    schedule = ChaosSchedule((ChaosEvent(at=when, kind="outage", target="dc-b"),))
    context, result = _run_balanced_pre_merge(chaos=schedule)
    assert result == clean_result
    assert context.recovery.stages_resubmitted >= 1
    merge_row = {
        "clean_jct": clean_context.metrics.job.duration,
        "chaos_jct": context.metrics.job.duration,
        "resubmitted": context.recovery.stages_resubmitted,
        "recomputed": context.recovery.tasks_recomputed,
    }

    return {"flap": flap_rows, "push": push_row, "pre_merge": merge_row}


def _render(data: Dict) -> List[str]:
    lines = [
        "Health-aware degradation under degraded WAN links (3-DC cluster, "
        f"{NUM_PARTITIONS} reducers)",
        "",
        "Scenario A — transient flap dc-a<->dc-b x0.01 for 5s, flow retry on",
        "  (zero stage resubmissions: the flap never escalates to lineage)",
        f"{'backend':<16}{'clean JCT':>11}{'chaos JCT':>11}{'retries':>9}"
        f"{'trips':>7}{'wasted MB':>11}{'resubmitted':>13}",
    ]
    for backend in BACKENDS:
        row = data["flap"][backend]
        lines.append(
            f"{backend:<16}{row['clean_jct']:>11.1f}{row['chaos_jct']:>11.1f}"
            f"{row['retries']:>9d}{row['trips']:>7d}{row['wasted_mb']:>11.1f}"
            f"{row['resubmitted']:>13d}"
        )
    push = data["push"]
    merge = data["pre_merge"]
    lines += [
        "",
        "Scenario B — sustained outage of the aggregation / merger DC "
        "(dfs_replication=2)",
        f"  push_aggregate: clean JCT {push['clean_jct']:.1f}s -> chaos JCT "
        f"{push['chaos_jct']:.1f}s, destination re-elected to "
        f"{','.join(push['destinations'])} ({push['reelections']} "
        f"re-election(s), {push['resubmitted']} resubmission(s)), "
        "output byte-identical",
        f"  pre_merge: clean JCT {merge['clean_jct']:.1f}s -> chaos JCT "
        f"{merge['chaos_jct']:.1f}s, {merge['resubmitted']} stage(s) "
        f"resubmitted, {merge['recomputed']} task(s) recomputed, "
        "output byte-identical",
    ]
    return lines


def test_degraded_links_across_backends(benchmark):
    data = benchmark.pedantic(_run_scenarios, rounds=1, iterations=1)
    emit("degraded_links.txt", _render(data))
    for backend in BACKENDS:
        assert data["flap"][backend]["resubmitted"] == 0
    assert data["push"]["reelections"] >= 1
