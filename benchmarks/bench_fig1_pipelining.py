"""Fig. 1 — the motivating pipelining timeline.

Two mappers finish at t=4 and t=8; the WAN link has 1/4 the capacity of
a datacenter link.  Fetch-based shuffle starts both transfers when the
next stage begins (t=10), they share the link and finish at t=18.
Push-based shuffle starts each transfer at its mapper's completion; the
reducers start at t=14 — four time units earlier.
"""

from benchmarks.matrix_cache import emit
from repro.experiments.motivation import fetch_timeline, push_timeline


def _render(fetch, push) -> list:
    return [
        "Fig. 1 — shuffle-input transfer timing (abstract time units)",
        f"{'':<18}{'fetch (a)':>12}{'push (b)':>12}",
        f"{'transfer starts':<18}{str(fetch.transfer_starts):>12}"
        f"{str(push.transfer_starts):>12}",
        f"{'transfer ends':<18}{str([round(t,1) for t in fetch.transfer_ends]):>12}"
        f"{str([round(t,1) for t in push.transfer_ends]):>12}",
        f"{'reducers start':<18}{fetch.reduce_start:>12.1f}"
        f"{push.reduce_start:>12.1f}",
    ]


def test_fig1_pipelining_timeline(benchmark):
    fetch, push = benchmark.pedantic(
        lambda: (fetch_timeline(), push_timeline()),
        rounds=5,
        iterations=1,
    )
    emit("fig1_pipelining.txt", _render(fetch, push))
    # The paper's exact numbers.
    assert fetch.reduce_start == 18.0
    assert push.reduce_start == 14.0
