"""Failure recovery across shuffle backends under identical chaos.

Three scenarios on a 3-datacenter cluster, all driven by the chaos
subsystem (``repro.failures.chaos``) rather than the abstract Fig. 2
model:

* **crash**   — the *same* executor crash (same host, same simulated
  time, chosen inside every backend's reduce window) hits fetch,
  push_aggregate, and pre_merge.  Fetch pays recovery WAN bytes to
  re-fetch the relaunched reducer's input; push recovers entirely
  inside the aggregator datacenter (zero recovery WAN bytes);
* **merger**  — pre_merge loses its merger host mid-reduce and must
  resubmit the map stage from lineage, re-merge onto a survivor, and
  still produce the correct output;
* **degrade** — a deep WAN degradation mid-run; all backends finish
  with unchanged output;
* **durability vs lineage** — the *same* storage-losing event (the
  ``shuffle_worker`` chaos kind: kills the pool worker on the remote
  backend, the data-heaviest host elsewhere) hits all five backends
  mid-reduce.  The lineage backends (fetch / push_aggregate /
  pre_merge) must resubmit the map stage to recompute the lost shuffle
  data; the durable backends (remote / blob) absorb it with **zero**
  resubmissions — remote promotes surviving replicas and pays
  background re-replication bytes, blob re-registers its durable
  objects and pays re-read requests only.

Every chaos run's output is asserted byte-equal to its clean run, and
every backend's byte counters are asserted to reconcile exactly with
the traffic monitor (recovery bytes are a tagged subset, never
double-counted).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from benchmarks.matrix_cache import emit
from repro.cluster.builder import ClusterSpec
from repro.cluster.context import ClusterContext
from repro.config import ShuffleConfig, SimulationConfig
from repro.failures import ChaosEvent, ChaosSchedule
from repro.network.topology import GBPS, MBPS

BACKENDS = ("fetch", "push_aggregate", "pre_merge")
DURABLE = ("remote", "blob")
ALL_BACKENDS = BACKENDS + DURABLE
NUM_PARTITIONS = 48  # four reduce waves on the 12-slot cluster
SCALE = 1e5
# Skewed input (paper §II-A: raw data is generated unevenly across
# datacenters): most blocks in dc-a, one in dc-b.  Push then aggregates
# into dc-a with a short WAN phase, so all three backends' reduce
# windows overlap in absolute time and one crash event can hit each of
# them mid-reduce.
PLACEMENT = ("dc-a-w0", "dc-a-w1", "dc-a-w0", "dc-a-w1", "dc-a-w1", "dc-b-w0")
# Scenario D replicates DFS input x2.  Round-robin replica placement
# takes *adjacent* entries of the candidate list, so this variant keeps
# the dc-a skew but never repeats a host in adjacent slots — every
# block genuinely gets two copies and lineage recovery never bottoms
# out at a lost input block.
DURABLE_PLACEMENT = (
    "dc-a-w0", "dc-a-w1", "dc-a-w0", "dc-a-w1", "dc-a-w0", "dc-b-w0"
)


def _spec() -> ClusterSpec:
    return ClusterSpec(
        datacenters=("dc-a", "dc-b", "dc-c"),
        workers_per_datacenter=2,
        intra_dc_bandwidth=1 * GBPS,
        inter_dc_bandwidth=100 * MBPS,
        driver_datacenter="dc-a",
    )


def _config(backend: str, chaos=None, replication: int = 1) -> SimulationConfig:
    return SimulationConfig(
        shuffle=ShuffleConfig(backend=backend),
        jitter=None,
        scale_factor=SCALE,
        chaos=chaos,
        dfs_replication=replication,
    )


def _run(
    backend: str,
    chaos=None,
    replication: int = 1,
    placement: Tuple[str, ...] = PLACEMENT,
) -> Tuple[ClusterContext, List]:
    context = ClusterContext(_spec(), _config(backend, chaos, replication))
    records = [(f"k{i % 29}", i) for i in range(96)]
    context.write_input_file(
        "/in",
        [records[i::6] for i in range(6)],
        placement_hosts=list(placement),
    )
    result = sorted(
        context.text_file("/in")
        .reduce_by_key(lambda a, b: a + b, num_partitions=NUM_PARTITIONS)
        .collect()
    )
    context.sim.run()  # drain background repair flows (remote re-replication)
    context.shutdown()
    return context, result


def _reduce_spans(context) -> List:
    return [
        span
        for stage in context.metrics.job.stages
        if stage.kind == "result"
        for span in stage.tasks
    ]


def _assert_counters_reconcile(context) -> None:
    backend = context.shuffle_service.backend
    counters = backend.counters
    monitor = context.traffic
    total = sum(monitor.by_tag.get(tag, 0.0) for tag in backend.flow_tags)
    cross = sum(
        monitor.cross_dc_by_tag.get(tag, 0.0) for tag in backend.flow_tags
    )
    assert abs(counters.wan_bytes + counters.intra_dc_bytes - total) < 1e-6
    assert abs(counters.wan_bytes - cross) < 1e-6
    assert counters.recovery_wan_bytes <= counters.wan_bytes + 1e-9
    assert counters.recovery_intra_dc_bytes <= counters.intra_dc_bytes + 1e-9


def _shared_crash_event(cleans: Dict[str, ClusterContext]) -> ChaosEvent:
    """One (host, time) inside *every* backend's reduce window.

    Scans the overlap of the three reduce windows for the earliest time
    at which some host runs a reduce attempt in every backend, and
    prefers a victim inside push's aggregator datacenter: that is the
    Fig. 2 scenario — the relaunched push reducer re-reads staged input
    from its own datacenter, while the relaunched fetch reducer must
    re-fetch remote map output over the WAN.
    """
    starts, ends = [], []
    for context in cleans.values():
        spans = _reduce_spans(context)
        starts.append(min(span.started_at for span in spans))
        ends.append(max(span.finished_at for span in spans))
    window_start, window_end = max(starts), min(ends)
    assert window_start < window_end, "reduce windows do not overlap"

    # Push's reducers concentrate where the input was aggregated.
    push = cleans["push_aggregate"]
    by_dc: Dict[str, int] = {}
    for span in _reduce_spans(push):
        datacenter = push.topology.datacenter_of(span.host)
        by_dc[datacenter] = by_dc.get(datacenter, 0) + 1
    aggregator = max(sorted(by_dc), key=lambda dc: by_dc[dc])

    for step in range(2, 39):
        when = window_start + (step / 40) * (window_end - window_start)
        candidates = None
        for context in cleans.values():
            busy = {
                span.host
                for span in _reduce_spans(context)
                if span.started_at <= when <= span.finished_at
            }
            candidates = busy if candidates is None else candidates & busy
        in_aggregator = sorted(
            host
            for host in (candidates or ())
            if push.topology.datacenter_of(host) == aggregator
        )
        if in_aggregator:
            return ChaosEvent(at=when, kind="crash", target=in_aggregator[0])
    raise AssertionError(
        "no aggregator-DC host runs reducers in every backend at any "
        "time in the shared reduce window"
    )


def _storage_event_for(clean: ClusterContext) -> ChaosEvent:
    """The storage-losing ``shuffle_worker`` event, 25% into this
    backend's own clean reduce window.

    The backends' reduce windows do not overlap in absolute time (the
    remote backend's upload + replicate hand-off pushes its reduce
    phase out past the lineage backends' whole jobs), so the fault is
    matched in *relative* position instead: same kind, same target
    datacenter, same point in each backend's reduce phase.  The kind
    resolves per backend at fire time — dc-a's pool worker on the
    remote backend (primary shuffle copies), dc-a's data-heaviest host
    elsewhere (map / aggregated / merged output).  Early in the window,
    so later reduce waves still need the lost data — lineage backends
    must resubmit, durable ones must not.
    """
    spans = _reduce_spans(clean)
    window_start = min(span.started_at for span in spans)
    window_end = max(span.finished_at for span in spans)
    when = window_start + 0.25 * (window_end - window_start)
    return ChaosEvent(at=when, kind="shuffle_worker", target="dc-a")


def _run_scenarios() -> Dict:
    cleans: Dict[str, ClusterContext] = {}
    clean_results: Dict[str, List] = {}
    for backend in BACKENDS:
        cleans[backend], clean_results[backend] = _run(backend)

    crash = _shared_crash_event(cleans)
    schedule = ChaosSchedule((crash,))
    crash_rows = {}
    for backend in BACKENDS:
        context, result = _run(backend, chaos=schedule)
        assert result == clean_results[backend]
        assert context.recovery.executor_crashes == 1
        _assert_counters_reconcile(context)
        crash_rows[backend] = {
            "clean_jct": cleans[backend].metrics.job.duration,
            "chaos_jct": context.metrics.job.duration,
            "recovery_wan_mb": context.shuffle_service.counters.recovery_wan_bytes / 1e6,
            "recovery_intra_mb": context.shuffle_service.counters.recovery_intra_dc_bytes / 1e6,
            "relaunched": context.recovery.tasks_relaunched,
            "resubmitted": context.recovery.stages_resubmitted,
        }
    assert crash_rows["fetch"]["recovery_wan_mb"] > 0
    assert crash_rows["push_aggregate"]["recovery_wan_mb"] == 0

    # Merger-host loss: pre_merge only (replicated input so lineage
    # recovery never bottoms out at a lost block).
    clean_context, clean_result = _run("pre_merge", replication=2)
    mergers = clean_context.shuffle_service.backend._mergers
    datacenter = sorted(mergers)[0]
    spans = _reduce_spans(clean_context)
    when = min(span.started_at for span in spans) + 0.5
    merger_schedule = ChaosSchedule(
        (ChaosEvent(at=when, kind="merger", target=datacenter),)
    )
    context, result = _run("pre_merge", chaos=merger_schedule, replication=2)
    assert result == clean_result
    assert context.recovery.merger_losses == 1
    assert context.recovery.stages_resubmitted >= 1
    _assert_counters_reconcile(context)
    merger_row = {
        "clean_jct": clean_context.metrics.job.duration,
        "chaos_jct": context.metrics.job.duration,
        "resubmitted": context.recovery.stages_resubmitted,
        "recomputed": context.recovery.tasks_recomputed,
    }

    # WAN degradation: every backend still produces its clean output.
    degrade_schedule = ChaosSchedule(
        (
            ChaosEvent(
                at=1.0, kind="degrade", target="dc-a->dc-b", factor=0.1
            ),
        )
    )
    degrade_rows = {}
    for backend in BACKENDS:
        context, result = _run(backend, chaos=degrade_schedule)
        assert result == clean_results[backend]
        _assert_counters_reconcile(context)
        degrade_rows[backend] = {
            "clean_jct": cleans[backend].metrics.job.duration,
            "chaos_jct": context.metrics.job.duration,
            "resubmitted": context.recovery.stages_resubmitted,
        }

    # Durability vs lineage: one storage-losing event, five backends.
    # Replicated DFS input so lineage recovery never bottoms out at a
    # lost input block — the contrast measured is pure shuffle recovery.
    d_cleans: Dict[str, ClusterContext] = {}
    d_results: Dict[str, List] = {}
    for backend in ALL_BACKENDS:
        d_cleans[backend], d_results[backend] = _run(
            backend, replication=2, placement=DURABLE_PLACEMENT
        )
    durability_rows = {}
    for backend in ALL_BACKENDS:
        storage_event = _storage_event_for(d_cleans[backend])
        context, result = _run(
            backend,
            chaos=ChaosSchedule((storage_event,)),
            replication=2,
            placement=DURABLE_PLACEMENT,
        )
        assert result == d_results[backend]
        assert context.recovery.shuffle_worker_losses == 1
        _assert_counters_reconcile(context)
        counters = context.shuffle_service.counters
        durability_rows[backend] = {
            "event_at": storage_event.at,
            "clean_jct": d_cleans[backend].metrics.job.duration,
            "chaos_jct": context.metrics.job.duration,
            "resubmitted": context.recovery.stages_resubmitted,
            "recomputed": context.recovery.tasks_recomputed,
            "recovery_mb": (
                counters.recovery_wan_bytes + counters.recovery_intra_dc_bytes
            ) / 1e6,
            "promotions": counters.replica_promotions,
            "rereplication_mb": counters.rereplication_bytes / 1e6,
            "blob_gets": counters.blob_gets,
        }
    # The separation the durable backends exist for: same event, zero
    # resubmissions and zero recomputation on remote/blob, lineage
    # resubmission everywhere else.
    for backend in BACKENDS:
        assert durability_rows[backend]["resubmitted"] >= 1, backend
    for backend in DURABLE:
        assert durability_rows[backend]["resubmitted"] == 0, backend
        assert durability_rows[backend]["recomputed"] == 0, backend
    assert durability_rows["remote"]["promotions"] >= 1
    assert durability_rows["remote"]["rereplication_mb"] > 0
    assert durability_rows["blob"]["blob_gets"] >= d_cleans[
        "blob"
    ].shuffle_service.counters.blob_gets

    return {
        "crash": crash_rows,
        "crash_event": crash,
        "merger": merger_row,
        "degrade": degrade_rows,
        "durability": durability_rows,
    }


def _render(data: Dict) -> List[str]:
    crash = data["crash"]
    event = data["crash_event"]
    lines = [
        "Failure recovery under identical chaos (3-DC cluster, "
        f"{NUM_PARTITIONS} reducers)",
        "",
        f"Scenario A — executor crash {event.target}@{event.at:.1f}s "
        "(mid-reduce, storage survives)",
        f"{'backend':<16}{'clean JCT':>11}{'chaos JCT':>11}"
        f"{'rec WAN MB':>12}{'rec intra MB':>14}{'relaunched':>12}"
        f"{'resubmitted':>13}",
    ]
    for backend in BACKENDS:
        row = crash[backend]
        lines.append(
            f"{backend:<16}{row['clean_jct']:>11.1f}{row['chaos_jct']:>11.1f}"
            f"{row['recovery_wan_mb']:>12.1f}{row['recovery_intra_mb']:>14.1f}"
            f"{row['relaunched']:>12d}{row['resubmitted']:>13d}"
        )
    merger = data["merger"]
    lines += [
        "",
        "Scenario B — pre_merge merger-host loss (lineage resubmission)",
        f"  clean JCT {merger['clean_jct']:.1f}s -> chaos JCT "
        f"{merger['chaos_jct']:.1f}s, {merger['resubmitted']} stage(s) "
        f"resubmitted, {merger['recomputed']} task(s) recomputed, "
        "output byte-identical",
        "",
        "Scenario C — WAN degrade dc-a->dc-b x0.1 (output unchanged)",
        f"{'backend':<16}{'clean JCT':>11}{'chaos JCT':>11}{'resubmitted':>13}",
    ]
    for backend in BACKENDS:
        row = data["degrade"][backend]
        lines.append(
            f"{backend:<16}{row['clean_jct']:>11.1f}{row['chaos_jct']:>11.1f}"
            f"{row['resubmitted']:>13d}"
        )
    lines += [
        "",
        "Scenario D — durability vs lineage: shuffle_worker:dc-a "
        "(storage-losing) 25% into each backend's reduce window, "
        "DFS input replicated x2",
        f"{'backend':<16}{'event t':>9}{'clean JCT':>11}{'chaos JCT':>11}"
        f"{'resubmitted':>13}{'recovery MB':>13}{'re-repl MB':>12}"
        f"{'promotions':>12}",
    ]
    for backend in ALL_BACKENDS:
        row = data["durability"][backend]
        lines.append(
            f"{backend:<16}{row['event_at']:>9.1f}"
            f"{row['clean_jct']:>11.1f}{row['chaos_jct']:>11.1f}"
            f"{row['resubmitted']:>13d}{row['recovery_mb']:>13.1f}"
            f"{row['rereplication_mb']:>12.1f}{row['promotions']:>12d}"
        )
    lines.append(
        "  durable backends recover by replica promotion (remote) or "
        "re-read of durable objects (blob): zero stages resubmitted"
    )
    return lines


def test_failure_recovery_across_backends(benchmark):
    data = benchmark.pedantic(_run_scenarios, rounds=1, iterations=1)
    emit("failure_recovery.txt", _render(data))
    # The Fig. 2 contrast, now measured end-to-end through the chaos
    # subsystem: fetch pays WAN to recover, push does not.
    assert data["crash"]["fetch"]["recovery_wan_mb"] > 0
    assert data["crash"]["push_aggregate"]["recovery_wan_mb"] == 0
    # And the durability contrast: under the same storage-losing event
    # every lineage backend resubmits, neither durable backend does.
    assert all(
        data["durability"][b]["resubmitted"] >= 1 for b in BACKENDS
    )
    assert all(
        data["durability"][b]["resubmitted"] == 0 for b in DURABLE
    )
