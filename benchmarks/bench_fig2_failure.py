"""Fig. 2 — failure recovery under fetch vs. push.

A reducer fails after its first attempt.  With fetch-based shuffle the
retry re-fetches its input across the WAN; with Push/Aggregate the
input already sits in the reducer's datacenter and recovery reads
locally.
"""

from benchmarks.matrix_cache import emit
from repro.experiments.motivation import (
    fetch_failure_recovery,
    push_failure_recovery,
)


def _render(fetch, push) -> list:
    return [
        "Fig. 2 — reducer-failure recovery (abstract time units)",
        f"{'':<24}{'fetch (a)':>12}{'push (b)':>12}",
        f"{'failure at':<24}{fetch.first_attempt_end:>12.1f}"
        f"{push.first_attempt_end:>12.1f}",
        f"{'recovery read time':<24}{fetch.recovery_read_seconds:>12.1f}"
        f"{push.recovery_read_seconds:>12.1f}",
        f"{'recovered at':<24}{fetch.recovered_at:>12.1f}"
        f"{push.recovered_at:>12.1f}",
    ]


def test_fig2_failure_recovery(benchmark):
    fetch, push = benchmark.pedantic(
        lambda: (fetch_failure_recovery(), push_failure_recovery()),
        rounds=5,
        iterations=1,
    )
    emit("fig2_failure.txt", _render(fetch, push))
    assert fetch.recovery_read_seconds == 4.0  # WAN re-fetch
    assert push.recovery_read_seconds < 1.0    # local re-read
    assert push.recovered_at < fetch.recovered_at
