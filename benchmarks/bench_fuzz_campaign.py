"""Chaos campaign engine: throughput and coverage benchmark.

One seeded ``repro fuzz`` campaign over the full backend x policy
matrix (rotate mode).  The assertions keep the fuzzer honest in CI:

* the composite oracle finds **zero** violations on the shipped tree
  (a finding here is a real regression — the minimized reproducer is
  in the report);
* the weighted grammar actually reaches every chaos kind within the
  budget (coverage must not silently collapse onto two cheap kinds);
* the faults genuinely bite: partitions, flow retries / lineage
  recoveries show up in the aggregated recovery counters.

Results land in ``benchmarks/results/fuzz_campaign.txt``; CI runs this
with ``--smoke`` (shrunk schedule budget).
"""

from __future__ import annotations

import os

from benchmarks.matrix_cache import emit
from repro.failures import CampaignConfig, run_campaign
from repro.failures.chaos import KINDS


def _schedule_budget() -> int:
    return 40 if os.environ.get("REPRO_SMOKE") else 120


def _run_campaign():
    config = CampaignConfig(
        seed=7,
        schedules=_schedule_budget(),
        events_min=2,
        events_max=6,
        minimize=True,
    )
    return run_campaign(config)


def _render(report) -> list:
    budget = report.schedules_drawn
    rate = report.cells_run / report.wall_seconds if report.wall_seconds else 0.0
    lines = [
        "Chaos campaign (seeded fuzz, rotate mode, full backend matrix)",
        f"  schedules: {budget}  cells: {report.cells_run}  "
        f"wall: {report.wall_seconds:.2f}s  ({rate:.0f} cells/s)",
        f"  findings: {len(report.findings)}  "
        f"clean fail-stops: {report.job_failures}",
        "  coverage (kind: applied/skipped):",
    ]
    for kind in sorted(KINDS):
        lines.append(
            f"    {kind}: {report.kinds_applied.get(kind, 0)}"
            f"/{report.kinds_skipped.get(kind, 0)}"
        )
    lines.append("  recovery paths fired:")
    for name, total in sorted(report.recovery_totals.items()):
        if total:
            lines.append(f"    {name}: {total:g}")
    return lines


def test_fuzz_campaign_coverage_and_cleanliness(benchmark):
    report = benchmark.pedantic(_run_campaign, rounds=1, iterations=1)
    emit("fuzz_campaign.txt", _render(report))
    # The shipped tree must fuzz clean: any finding is a regression and
    # its minimized reproducer is in the emitted report.
    assert report.findings == []
    assert report.cells_run == report.schedules_drawn  # rotate mode
    # Every chaos kind was drawn and fired (or at least attempted — an
    # outage can be legitimately skipped by the last-executor guard).
    fired = set(report.kinds_applied) | set(report.kinds_skipped)
    assert fired == set(KINDS)
    assert report.kinds_applied.get("partition", 0) > 0
    assert report.kinds_applied.get("degrade", 0) > 0
    assert report.kinds_applied.get("crash", 0) > 0
    # The faults genuinely exercised recovery machinery.
    assert report.recovery_totals.get("wan_partitions", 0) > 0
