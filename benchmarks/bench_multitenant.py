"""Multi-tenant job streams: policies x backends on a shared cluster.

Sweeps a Poisson job stream (100 queued jobs in smoke mode, 1,000 by
default, ``REPRO_STREAM_JOBS`` up to 10,000) through every inter-job
admission policy (fifo / fair / sjf / pack) under every backend-only
shuffle scheme (fetch / push_aggregate / pre_merge) on the jittered
Fig. 6 cluster, and reports per-policy stream duration plus per-tenant
JCT percentiles and WAN bytes.

Assertions (also the CI ``--smoke`` regression guards):

* every policy x backend cell completes its whole stream;
* per-tenant ledger bytes reconcile **exactly** with the traffic
  monitor's per-tenant records — total and WAN — so admission-time
  accounting and completion-time observation never drift;
* on the skewed two-tenant stream, weighted-fair scheduling must
  measurably shift per-tenant p95 JCT against FIFO: identical
  distributions mean the policy layer stopped doing anything.

Environment knobs: ``REPRO_STREAM_JOBS`` (jobs per stream),
``REPRO_SMOKE`` (caps the sweep for CI).
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from benchmarks.matrix_cache import emit
from repro.experiments.runner import (
    ExperimentPlan,
    RunResult,
    run_workload_once,
)
from repro.experiments.schemes import SCHEME_REGISTRY, Scheme
from repro.scheduler.job_scheduler import JOB_POLICIES
from repro.workloads import all_workloads
from repro.workloads.arrivals import ArrivalSpec, StreamSpec, TenantSpec

_SMOKE = os.environ.get("REPRO_SMOKE", "0") not in ("", "0")

BACKEND_SCHEMES: Tuple[Scheme, ...] = tuple(
    spec.scheme for spec in SCHEME_REGISTRY.values() if spec.preprocess is None
)

# A deliberately skewed two-tenant mix: "prod" is heavy-weighted but
# rare, "batch" swamps the queue — precisely where weighted-fair and
# FIFO must disagree.
TENANTS = (
    TenantSpec("prod", weight=8.0, share=1.0),
    TenantSpec("batch", weight=1.0, share=4.0),
)


def _job_count() -> int:
    value = int(os.environ.get("REPRO_STREAM_JOBS", "0"))
    if value:
        return max(1, min(value, 10_000))
    return 100 if _SMOKE else 1_000


def _stream(policy: str) -> StreamSpec:
    return StreamSpec(
        # High arrival rate so the queue stays loaded and admission
        # order matters; small mix keeps the smoke cells fast.
        arrival=ArrivalSpec(
            process="poisson",
            rate_per_minute=120.0,
            num_jobs=_job_count(),
            mix=("Sort", "WordCount") if _SMOKE else (),
        ),
        tenants=TENANTS,
        policy=policy,
        max_concurrent=3,
    )


def _run_cell(policy: str, scheme: Scheme) -> RunResult:
    plan = ExperimentPlan(seeds=(0,), stream=_stream(policy))
    return run_workload_once(all_workloads()[0], scheme, 0, plan)


def _build_sweep() -> Dict[Tuple[str, str], RunResult]:
    schemes = BACKEND_SCHEMES[:1] if _SMOKE else BACKEND_SCHEMES
    sweep: Dict[Tuple[str, str], RunResult] = {}
    for policy in JOB_POLICIES:
        for scheme in schemes:
            result = _run_cell(policy, scheme)
            sweep[(policy, result.backend)] = result
    return sweep


def _render(sweep: Dict[Tuple[str, str], RunResult]) -> List[str]:
    lines = [
        f"Multi-tenant streams: {_job_count()} Poisson jobs, "
        f"tenants {', '.join(f'{t.name}(w={t.weight:g})' for t in TENANTS)}",
        f"{'policy':<8}{'backend':<16}{'stream (s)':>11}{'xDC MB':>9}"
        f"{'prod p95':>10}{'batch p95':>11}",
    ]
    for (policy, backend), result in sweep.items():
        prod = result.tenants.get("prod", {})
        batch = result.tenants.get("batch", {})
        lines.append(
            f"{policy:<8}{backend:<16}"
            f"{result.job_duration:11.1f}"
            f"{result.cross_dc_megabytes:9.1f}"
            f"{prod.get('jct_p95_s', float('nan')):10.2f}"
            f"{batch.get('jct_p95_s', float('nan')):11.2f}"
        )
    return lines


def test_multitenant_stream_sweep(benchmark):
    sweep = benchmark.pedantic(_build_sweep, rounds=1, iterations=1)
    emit("multitenant.txt", _render(sweep))

    for (policy, backend), result in sweep.items():
        cell = f"{policy}/{backend}"
        info = result.stream
        # Every stream must run to completion: queued jobs all admitted
        # and finished, none stranded by the admission loop.
        assert info["jobs_submitted"] == _job_count(), cell
        assert info["jobs_completed"] == _job_count(), cell
        assert info["jobs_failed"] == 0, cell
        for tenant, row in result.tenants.items():
            # Admission-time ledger == completion-time monitor, exactly.
            assert row["bytes"] == row["monitor_bytes"], (cell, tenant)
            assert row["wan_bytes"] == row["monitor_wan_bytes"], (
                cell, tenant,
            )
            assert row["jobs_completed"] == row["jobs_submitted"], (
                cell, tenant,
            )

    # Weighted-fair must measurably shift p95 JCT against FIFO on the
    # skewed stream (same backend, same seed, same arrivals).
    backend0 = next(backend for (_, backend) in sweep)
    fifo = sweep[("fifo", backend0)].tenants
    fair = sweep[("fair", backend0)].tenants
    assert any(
        abs(fair[t]["jct_p95_s"] - fifo[t]["jct_p95_s"]) > 1e-6
        for t in ("prod", "batch")
    ), "weighted-fair and FIFO produced identical per-tenant p95 JCT"
