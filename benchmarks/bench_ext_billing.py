"""Extension bench — the dollar-vs-JCT frontier of wide-area shuffles.

The paper's opening motivation includes "the time and bandwidth *cost*
for moving data across datacenters".  Cloud providers bill inter-region
egress per gigabyte and object-store requests per thousand; this bench
runs every backend-only scheme (fetch / push_aggregate / pre_merge /
remote / blob) over the workload suite and places each backend on a
dollars-versus-completion-time plane:

* **egress dollars** — EC2-style per-GB inter-region pricing over the
  traffic monitor's per-link bytes (``repro.metrics.billing``);
* **request dollars** — the blob backend additionally pays per-PUT and
  per-GET object-store request pricing (``BlobPricing``); zero for
  every other backend;
* **frontier** — the Pareto-efficient subset: a backend is on the
  frontier iff no other backend is at least as fast *and* at least as
  cheap (strictly better in one dimension).

Artifacts: ``ext_billing.txt`` (human table) and
``BENCH_billing_frontier.json`` (machine-readable rows + frontier).

Environment knobs: ``REPRO_SEEDS``, ``REPRO_WORKLOADS``, ``REPRO_JOBS``.
"""

from __future__ import annotations

from typing import Dict, List

from benchmarks.matrix_cache import (
    emit,
    emit_json,
    seed_count,
    selected_workloads,
)
from repro.experiments.runner import (
    ExperimentPlan,
    RunResult,
    run_matrix_parallel,
)
from repro.experiments.schemes import SCHEME_REGISTRY
from repro.metrics.billing import blob_request_dollars

# Every scheme that is purely a shuffle backend, registry-enumerated:
# a newly registered backend joins the frontier automatically.
BACKEND_SCHEMES = tuple(
    spec.scheme for spec in SCHEME_REGISTRY.values() if spec.preprocess is None
)


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def _build_matrix() -> List[RunResult]:
    plan = ExperimentPlan(seeds=tuple(range(seed_count())))
    return run_matrix_parallel(
        selected_workloads(), list(BACKEND_SCHEMES), plan, jobs=None
    )


def _aggregate(matrix: List[RunResult]) -> Dict[str, Dict]:
    """Per-backend means over (workload x seed): JCT, egress dollars,
    request dollars, and the per-workload breakdown."""
    grouped: Dict[str, List[RunResult]] = {}
    for run in matrix:
        grouped.setdefault(run.backend, []).append(run)
    rows: Dict[str, Dict] = {}
    for backend, runs in grouped.items():
        request = [blob_request_dollars(r.shuffle_perf) for r in runs]
        total = [r.cost_dollars for r in runs]
        per_workload: Dict[str, Dict[str, List[float]]] = {}
        for run in runs:
            cell = per_workload.setdefault(
                run.workload, {"jct": [], "dollars": []}
            )
            cell["jct"].append(run.duration)
            cell["dollars"].append(run.cost_dollars)
        rows[backend] = {
            "scheme": runs[0].scheme.value,
            "mean_jct_s": _mean([r.duration for r in runs]),
            "mean_total_dollars": _mean(total),
            "mean_egress_dollars": _mean(
                [t - q for t, q in zip(total, request)]
            ),
            "mean_request_dollars": _mean(request),
            "per_workload": {
                name: {
                    "mean_jct_s": _mean(cell["jct"]),
                    "mean_dollars": _mean(cell["dollars"]),
                }
                for name, cell in sorted(per_workload.items())
            },
        }
    return rows


def _frontier(rows: Dict[str, Dict]) -> List[str]:
    """Pareto-efficient backends on the (JCT, dollars) plane."""
    frontier = []
    for name, row in rows.items():
        dominated = any(
            other["mean_jct_s"] <= row["mean_jct_s"]
            and other["mean_total_dollars"] <= row["mean_total_dollars"]
            and (
                other["mean_jct_s"] < row["mean_jct_s"]
                or other["mean_total_dollars"] < row["mean_total_dollars"]
            )
            for other_name, other in rows.items()
            if other_name != name
        )
        if not dominated:
            frontier.append(name)
    return sorted(frontier)


def _render(rows: Dict[str, Dict], frontier: List[str]) -> List[str]:
    lines = [
        "Extension — dollars vs. completion time, all shuffle backends "
        f"(mean over {seed_count()} seed(s))",
        f"{'backend':<16}{'JCT (s)':>10}{'egress $':>11}{'request $':>11}"
        f"{'total $':>10}{'frontier':>10}",
    ]
    for backend in sorted(rows, key=lambda b: rows[b]["mean_jct_s"]):
        row = rows[backend]
        marker = "*" if backend in frontier else ""
        lines.append(
            f"{backend:<16}{row['mean_jct_s']:>10.1f}"
            f"{row['mean_egress_dollars']:>11.4f}"
            f"{row['mean_request_dollars']:>11.4f}"
            f"{row['mean_total_dollars']:>10.4f}{marker:>10}"
        )
    lines.append("")
    lines.append("* = Pareto-efficient (no backend is both faster and cheaper)")
    return lines


def test_billing_frontier_across_backends(benchmark):
    rows = benchmark.pedantic(
        lambda: _aggregate(_build_matrix()), rounds=1, iterations=1
    )
    frontier = _frontier(rows)
    emit("ext_billing.txt", _render(rows, frontier))
    emit_json(
        "BENCH_billing_frontier.json",
        {
            "seeds": seed_count(),
            "backends": rows,
            "frontier": frontier,
        },
    )

    # All five backends ran and produced dollars.
    assert set(rows) == {
        "fetch", "push_aggregate", "pre_merge", "remote", "blob"
    }
    for backend, row in rows.items():
        assert row["mean_total_dollars"] > 0, backend
    # Request pricing is the blob backend's signature: nonzero there,
    # zero everywhere else.
    assert rows["blob"]["mean_request_dollars"] > 0
    for backend in ("fetch", "push_aggregate", "pre_merge", "remote"):
        assert rows[backend]["mean_request_dollars"] == 0.0
    # Push/Aggregate saves real money against stock Spark, and the
    # frontier is non-trivial: at least one backend dominates another.
    assert (
        rows["push_aggregate"]["mean_total_dollars"]
        < rows["fetch"]["mean_total_dollars"]
    )
    assert 1 <= len(frontier) < len(rows)
