"""Extension bench — the dollar cost of wide-area shuffles.

The paper's opening motivation includes "the time and bandwidth *cost*
for moving data across datacenters".  Cloud providers bill inter-region
egress per gigabyte; this bench prices each scheme's traffic with
EC2-style rates (repro.metrics.billing), turning Fig. 8 into dollars.
"""

from collections import defaultdict

from benchmarks.matrix_cache import emit, get_matrix

_SCHEMES = ("Spark", "Centralized", "AggShuffle")


def test_traffic_cost_in_dollars(benchmark):
    def aggregate():
        sums = defaultdict(float)
        counts = defaultdict(int)
        for run in get_matrix():
            key = (run.workload, run.scheme.value)
            sums[key] += run.cost_dollars
            counts[key] += 1
        return {key: sums[key] / counts[key] for key in sums}

    costs = benchmark.pedantic(aggregate, rounds=1, iterations=1)
    workloads = sorted({workload for workload, _s in costs})
    lines = [
        "Extension — mean inter-datacenter egress cost per run ($)",
        f"{'workload':<12}" + "".join(f"{s:>14}" for s in _SCHEMES),
    ]
    total = defaultdict(float)
    for workload in workloads:
        row = [costs.get((workload, scheme), 0.0) for scheme in _SCHEMES]
        for scheme, value in zip(_SCHEMES, row):
            total[scheme] += value
        lines.append(
            f"{workload:<12}" + "".join(f"{value:14.4f}" for value in row)
        )
    lines.append(
        f"{'TOTAL':<12}"
        + "".join(f"{total[scheme]:14.4f}" for scheme in _SCHEMES)
    )
    emit("ext_billing.txt", lines)

    # Push/Aggregate saves real money on the workload suite.
    assert total["AggShuffle"] < total["Spark"]