"""Ablation — the paper's prescribed TeraSort fix (§V-B).

"This problem can be resolved by explicitly calling transferTo() before
the map, and we can expect further improvement from AggShuffle."

Compares three TeraSort variants on the Fig. 6 cluster:
* implicit AggShuffle (pushes the bloated map output),
* explicit transfer_to before the bloating map (ships raw input),
* the Spark baseline.
"""

import os

from benchmarks.matrix_cache import emit
from repro.cluster.builder import ec2_six_region_spec
from repro.cluster.context import ClusterContext
from repro.experiments.placement import skewed_block_placement
from repro.experiments.runner import generated_input
from repro.experiments.schemes import Scheme, config_for_scheme
from repro.simulation import RandomSource
from repro.workloads import TeraSort


def _run_variant(explicit: bool, seed: int):
    workload = TeraSort()
    spec = ec2_six_region_spec()
    config = config_for_scheme(Scheme.AGGSHUFFLE, workload.spec, seed)
    context = ClusterContext(spec, config)
    partitions = generated_input(workload, seed)
    placement = skewed_block_placement(
        spec, RandomSource(seed).child("placement:TeraSort"), len(partitions)
    )
    workload.install(context, partitions, placement_hosts=placement)
    started = context.sim.now
    if explicit:
        rdd = workload.build_with_explicit_transfer(context)
    else:
        rdd = workload.build(context)
    rdd.save_as_file(workload.output_path)
    duration = context.sim.now - started
    pushed = context.traffic.cross_dc_by_tag.get("transfer_to", 0.0) / 1e6
    context.shutdown()
    return duration, pushed


def test_explicit_transfer_repairs_terasort(benchmark):
    seeds = range(int(os.environ.get("REPRO_SEEDS", "10")) // 2 or 1)

    def run_all():
        implicit = [_run_variant(False, seed) for seed in seeds]
        explicit = [_run_variant(True, seed) for seed in seeds]
        return implicit, explicit

    implicit, explicit = benchmark.pedantic(run_all, rounds=1, iterations=1)
    implicit_jct = sum(d for d, _p in implicit) / len(implicit)
    explicit_jct = sum(d for d, _p in explicit) / len(explicit)
    implicit_push = sum(p for _d, p in implicit) / len(implicit)
    explicit_push = sum(p for _d, p in explicit) / len(explicit)
    emit(
        "ablation_terasort_fix.txt",
        [
            "Ablation — TeraSort with explicit transfer_to before the map",
            f"{'variant':<22}{'JCT (s)':>10}{'pushed MB':>12}",
            f"{'implicit AggShuffle':<22}{implicit_jct:>10.1f}"
            f"{implicit_push:>12.1f}",
            f"{'explicit transferTo':<22}{explicit_jct:>10.1f}"
            f"{explicit_push:>12.1f}",
        ],
    )
    # The fix ships raw instead of bloated data (by the bloat factor)...
    assert explicit_push < implicit_push
    # ... at a bounded completion-time cost: moving the map into the
    # aggregator datacenter serialises it onto that region's cores, a
    # compute/traffic trade-off the paper leaves to the developer.
    assert explicit_jct <= implicit_jct * 1.15
