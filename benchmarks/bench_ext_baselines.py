"""Extension bench — AggShuffle vs an Iridium-style baseline.

The paper argues Push/Aggregate is orthogonal to input/task placement
systems such as Iridium (§VI).  This bench runs the Iridium-like
input-redistribution scheme next to the paper's three systems on the
PageRank workload (where the contrast is sharpest): redistribution
balances *input*, but every subsequent shuffle still crosses
datacenters, while aggregation collapses them into one.
"""

import os

from benchmarks.matrix_cache import emit
from repro.experiments.runner import ExperimentPlan, run_workload_once
from repro.experiments.schemes import Scheme
from repro.metrics.stats import summarize
from repro.workloads import PageRank


def test_iridium_vs_aggshuffle_on_pagerank(benchmark):
    seeds = range(max(1, int(os.environ.get("REPRO_SEEDS", "10")) // 2))
    plan = ExperimentPlan(seeds=tuple(seeds))
    schemes = (
        Scheme.SPARK, Scheme.IRIDIUM, Scheme.CENTRALIZED, Scheme.AGGSHUFFLE
    )

    def run_all():
        rows = {}
        for scheme in schemes:
            runs = [
                run_workload_once(PageRank(), scheme, seed, plan)
                for seed in seeds
            ]
            rows[scheme.value] = (
                summarize([r.duration for r in runs]),
                sum(r.cross_dc_megabytes for r in runs) / len(runs),
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "Extension — PageRank under four schemes",
        f"{'scheme':<14}{'JCT (s)':>10}{'cross-DC MB':>14}",
    ]
    for scheme, (stats, traffic) in rows.items():
        lines.append(f"{scheme:<14}{stats.trimmed:>10.1f}{traffic:>14.1f}")
    emit("ext_baselines.txt", lines)

    # Aggregation beats input redistribution on iterative traffic: the
    # redistributed input still shuffles across DCs every iteration.
    assert rows["AggShuffle"][1] < rows["IridiumLike"][1]
    # And on completion time.
    assert rows["AggShuffle"][0].trimmed < rows["IridiumLike"][0].trimmed
