"""Benchmark-suite options.

``--smoke`` shrinks the run matrix to a single seed (unless the caller
already pinned ``REPRO_SEEDS``) so CI can execute the benchmarks on
every push: the figures lose statistical weight, but every assertion —
including the backend perf-counter guards — still runs against a real
end-to-end simulation.
"""

from __future__ import annotations

import os


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="single-seed benchmark runs for CI (respects REPRO_SEEDS)",
    )


def pytest_configure(config):
    if config.getoption("--smoke"):
        os.environ.setdefault("REPRO_SEEDS", "1")
        # Engine microbenchmark: shrink the churn matrix and relax the
        # absolute speedup thresholds to an ordering check (the vector
        # drive must not be slower than the incremental oracle).
        os.environ.setdefault("REPRO_SMOKE", "1")
