"""Microbenchmarks of the simulation engine itself.

Not a paper figure — these track the cost of the substrate so the
figure benchmarks stay interpretable: event throughput of the DES
kernel, end-to-end latency of a small simulated job, and the fair-share
fabric under churn (where the incremental component-scoped engine is
compared against the legacy global re-solve path; the before/after
numbers land in ``results/engine_micro.txt``).
"""

import os
import time

from benchmarks.matrix_cache import emit, emit_json
from repro.network.fabric import NetworkFabric
from repro.network.topology import GBPS, MBPS, Topology
from repro.simulation import Simulator
from tests.conftest import make_context

# CI perf-smoke mode: shrink the churn matrix and only require that the
# vector drive is not slower than the incremental one (absolute ratios
# are too noisy on shared runners; a regression that loses the ordering
# entirely still fails).
_SMOKE = os.environ.get("REPRO_SMOKE", "0") not in ("", "0")


def test_kernel_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        for index in range(10_000):
            sim.timeout(float(index % 100))
        sim.run()
        return sim.processed_events

    processed = benchmark(run_events)
    assert processed >= 10_000


def test_kernel_process_switching(benchmark):
    def run_processes():
        sim = Simulator()

        def ping(sim):
            for _ in range(100):
                yield sim.timeout(1.0)

        for _ in range(100):
            sim.spawn(ping(sim))
        sim.run()
        return sim.now

    final = benchmark(run_processes)
    assert final == 100.0


def test_small_job_end_to_end(benchmark):
    def run_job():
        context = make_context(push=True)
        context.write_input_file(
            "/in", [[(f"k{i}", 1) for i in range(20)] for _ in range(4)]
        )
        result = (
            context.text_file("/in")
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        context.shutdown()
        return result

    result = benchmark(run_job)
    assert len(result) == 20


# ---------------------------------------------------------------------------
# Fair-share fabric under churn: vector vs incremental vs global drives
# ---------------------------------------------------------------------------
def _build_pairs_fabric(num_pairs, drive):
    """Disjoint DC pairs — one fair-share component per pair."""
    sim = Simulator()
    topo = Topology()
    for pair in range(num_pairs):
        for side in ("a", "b"):
            dc = f"P{pair}{side}"
            topo.add_datacenter(dc)
            for host in range(2):
                topo.add_host(
                    f"{dc}{host}", dc,
                    access_bandwidth=GBPS, access_latency=0.0,
                )
        topo.connect_datacenters(
            f"P{pair}a", f"P{pair}b", 100 * MBPS, latency=0.0
        )
    fabric = NetworkFabric(sim, topo, drive=drive)
    return sim, topo, fabric


def _run_churn(drive, num_pairs=20, flows_per_pair=26):
    """num_pairs x flows_per_pair concurrent flows; staggered sizes so
    departures churn (all sizes distinct -> one departure instant each).

    The returned wall time covers ``sim.run()`` only — every solve,
    departure, and event is in there, while the topology construction
    and admission calls (identical code across drives) are not.
    """
    sim, _topo, fabric = _build_pairs_fabric(num_pairs, drive)
    for pair in range(num_pairs):
        for index in range(flows_per_pair):
            size = 1e6 * (1 + index) + pair * 2.5e4
            fabric.transfer(f"P{pair}a0", f"P{pair}b0", size)
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    assert fabric.active_flow_count == 0
    assert len(fabric.completed_flows) == num_pairs * flows_per_pair
    return wall, sim.now, fabric.perf


def test_fabric_churn_incremental(benchmark):
    """Track the incremental engine's absolute cost under churn."""
    _wall, final, perf = benchmark.pedantic(
        lambda: _run_churn(drive="incremental"), rounds=1, iterations=1
    )
    assert perf.peak_active_flows >= 500
    # Departure solves stay scoped to one pair's component.
    assert perf.mean_flows_per_solve < 60


def test_fabric_churn_speedup_report():
    """The headline claims, measured in one pass with identical results:

    * incremental (component-scoped re-solves) >= 3x over the global
      re-everything drive;
    * vector (cascade plans, zero re-solves between perturbations)
      >= 5x over the incremental drive.

    ``REPRO_SMOKE=1`` shrinks the matrix and only checks the ordering —
    the CI perf-smoke step fails when the vector drive is *slower* than
    the incremental oracle drive.
    """
    num_pairs, flows_per_pair = (6, 10) if _SMOKE else (20, 26)
    drives = ("global", "incremental", "vector")
    seconds = {}
    perfs = {}
    finals = {}
    _run_churn("vector", num_pairs, flows_per_pair)  # warm caches/JIT-free
    for drive in drives:
        # Best-of-N tames scheduler noise (results are deterministic
        # across repetitions); the cheap drives get more repetitions.
        walls = []
        for _rep in range(2 if drive == "global" else 7):
            wall, finals[drive], perfs[drive] = _run_churn(
                drive, num_pairs, flows_per_pair
            )
            walls.append(wall)
        seconds[drive] = min(walls)
    # Same simulated outcome on every drive (max-min allocation is
    # unique; the drives accumulate float error in different orders).
    for drive in ("incremental", "vector"):
        assert abs(finals[drive] - finals["global"]) <= (
            1e-9 * finals["global"]
        )
    incr_speedup = seconds["global"] / seconds["incremental"]
    vector_speedup = seconds["incremental"] / seconds["vector"]

    def row(label, drive):
        perf = perfs[drive]
        return (
            f"{label:<22}{seconds[drive] * 1e3:>9.1f} ms"
            f"{perf.solves:>9.0f}{perf.flows_touched:>15.0f}"
            f"{perf.mean_flows_per_solve:>13.1f}"
            f"{perf.solver_seconds * 1e3:>13.1f} ms"
        )

    total = num_pairs * flows_per_pair
    lines = [
        f"Fabric microbenchmark — {total} churning flows on "
        f"{num_pairs} disjoint DC pairs",
        "(arrivals coalesce at t=0; every departure perturbs its "
        "component)",
        "",
        f"{'drive':<22}{'wall':>11}{'solves':>9}{'flows touched':>15}"
        f"{'mean/solve':>13}{'solver':>16}",
        row("global re-solve", "global"),
        row("incremental", "incremental"),
        row("vector (cascade)", "vector"),
        "",
        f"incremental/global speedup: {incr_speedup:.1f}x   "
        f"vector/incremental speedup: {vector_speedup:.1f}x",
        f"flows-per-wall-second (vector): {total / seconds['vector']:,.0f}",
    ]
    emit("engine_micro.txt", lines)
    emit_json(
        "BENCH_engine_micro.json",
        {
            "scenario": {
                "num_pairs": num_pairs,
                "flows_per_pair": flows_per_pair,
                "total_flows": total,
                "smoke": _SMOKE,
            },
            "drives": {
                drive: {
                    "wall_seconds": seconds[drive],
                    "solves": perfs[drive].solves,
                    "flows_touched": perfs[drive].flows_touched,
                    "mean_flows_per_solve": (
                        perfs[drive].mean_flows_per_solve
                    ),
                    "solver_seconds": perfs[drive].solver_seconds,
                    "events": perfs[drive].events,
                    "final_time": finals[drive],
                }
                for drive in drives
            },
            "speedups": {
                "incremental_over_global": incr_speedup,
                "vector_over_incremental": vector_speedup,
                "vector_over_global": seconds["global"] / seconds["vector"],
            },
        },
    )
    if _SMOKE:
        assert vector_speedup >= 1.0, (
            f"vector drive slower than incremental oracle: "
            f"{vector_speedup:.2f}x"
        )
    else:
        assert incr_speedup >= 3.0, (
            f"expected >= 3x, got {incr_speedup:.2f}x"
        )
        assert vector_speedup >= 5.0, (
            f"expected >= 5x, got {vector_speedup:.2f}x"
        )


def test_fabric_jitter_on_idle_links(benchmark):
    """Jitter on links carrying zero flows must not reach the solver."""
    def run():
        sim, topo, fabric = _build_pairs_fabric(40, drive="incremental")
        fabric.transfer("P0a0", "P0b0", 50e6)
        sim.run(until=0.1)
        idle = [
            topo.wan_link(f"P{pair}a", f"P{pair}b")
            for pair in range(1, 40)
        ]
        for _tick in range(100):
            for link in idle:
                link.set_capacity(link.capacity * 1.0001)
                fabric.notify_capacity_change(changed_links=[link])
        sim.run()
        return fabric.perf

    perf = benchmark.pedantic(run, rounds=1, iterations=1)
    assert perf.jitter_noops == 39 * 100
    # Only the busy pair's arrival/departure ever solved.
    assert perf.solves <= 4
