"""Microbenchmarks of the simulation engine itself.

Not a paper figure — these track the cost of the substrate so the
figure benchmarks stay interpretable: event throughput of the DES
kernel and end-to-end latency of a small simulated job.
"""

from repro.simulation import Simulator
from tests.conftest import make_context


def test_kernel_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        for index in range(10_000):
            sim.timeout(float(index % 100))
        sim.run()
        return sim.processed_events

    processed = benchmark(run_events)
    assert processed >= 10_000


def test_kernel_process_switching(benchmark):
    def run_processes():
        sim = Simulator()

        def ping(sim):
            for _ in range(100):
                yield sim.timeout(1.0)

        for _ in range(100):
            sim.spawn(ping(sim))
        sim.run()
        return sim.now

    final = benchmark(run_processes)
    assert final == 100.0


def test_small_job_end_to_end(benchmark):
    def run_job():
        context = make_context(push=True)
        context.write_input_file(
            "/in", [[("k%d" % i, 1) for i in range(20)] for _ in range(4)]
        )
        result = (
            context.text_file("/in")
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        context.shutdown()
        return result

    result = benchmark(run_job)
    assert len(result) == 20
