"""Microbenchmarks of the simulation engine itself.

Not a paper figure — these track the cost of the substrate so the
figure benchmarks stay interpretable: event throughput of the DES
kernel, end-to-end latency of a small simulated job, and the fair-share
fabric under churn (where the incremental component-scoped engine is
compared against the legacy global re-solve path; the before/after
numbers land in ``results/engine_micro.txt``).
"""

import time

from benchmarks.matrix_cache import emit
from repro.network.fabric import NetworkFabric
from repro.network.topology import GBPS, MBPS, Topology
from repro.simulation import Simulator
from tests.conftest import make_context


def test_kernel_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        for index in range(10_000):
            sim.timeout(float(index % 100))
        sim.run()
        return sim.processed_events

    processed = benchmark(run_events)
    assert processed >= 10_000


def test_kernel_process_switching(benchmark):
    def run_processes():
        sim = Simulator()

        def ping(sim):
            for _ in range(100):
                yield sim.timeout(1.0)

        for _ in range(100):
            sim.spawn(ping(sim))
        sim.run()
        return sim.now

    final = benchmark(run_processes)
    assert final == 100.0


def test_small_job_end_to_end(benchmark):
    def run_job():
        context = make_context(push=True)
        context.write_input_file(
            "/in", [[("k%d" % i, 1) for i in range(20)] for _ in range(4)]
        )
        result = (
            context.text_file("/in")
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        context.shutdown()
        return result

    result = benchmark(run_job)
    assert len(result) == 20


# ---------------------------------------------------------------------------
# Fair-share fabric under churn: incremental vs global re-solve
# ---------------------------------------------------------------------------
def _build_pairs_fabric(num_pairs, incremental):
    """Disjoint DC pairs — one fair-share component per pair."""
    sim = Simulator()
    topo = Topology()
    for pair in range(num_pairs):
        for side in ("a", "b"):
            dc = f"P{pair}{side}"
            topo.add_datacenter(dc)
            for host in range(2):
                topo.add_host(
                    f"{dc}{host}", dc,
                    access_bandwidth=GBPS, access_latency=0.0,
                )
        topo.connect_datacenters(
            f"P{pair}a", f"P{pair}b", 100 * MBPS, latency=0.0
        )
    fabric = NetworkFabric(sim, topo, incremental=incremental)
    return sim, topo, fabric


def _run_churn(incremental, num_pairs=20, flows_per_pair=26):
    """520 concurrent flows; staggered sizes so departures churn."""
    sim, _topo, fabric = _build_pairs_fabric(num_pairs, incremental)
    for pair in range(num_pairs):
        for index in range(flows_per_pair):
            size = 1e6 * (1 + index) + pair * 2.5e4
            fabric.transfer(f"P{pair}a0", f"P{pair}b0", size)
    sim.run()
    assert fabric.active_flow_count == 0
    assert len(fabric.completed_flows) == num_pairs * flows_per_pair
    return sim.now, fabric.perf


def test_fabric_churn_incremental(benchmark):
    """Track the incremental engine's absolute cost under churn."""
    final, perf = benchmark.pedantic(
        lambda: _run_churn(incremental=True), rounds=1, iterations=1
    )
    assert perf.peak_active_flows >= 500
    # Departure solves stay scoped to one pair's component.
    assert perf.mean_flows_per_solve < 60


def test_fabric_churn_speedup_report():
    """The headline claim: component-scoped re-solves beat the global
    path by >= 3x on 500+ churning flows, with identical results."""
    seconds = {}
    perfs = {}
    finals = {}
    for incremental in (False, True):
        started = time.perf_counter()
        finals[incremental], perfs[incremental] = _run_churn(incremental)
        seconds[incremental] = time.perf_counter() - started
    # Same simulated outcome either way (max-min allocation is unique;
    # the two drives accumulate float error in different orders).
    assert abs(finals[True] - finals[False]) <= 1e-9 * finals[False]
    speedup = seconds[False] / seconds[True]

    def row(label, incremental):
        perf = perfs[incremental]
        return (
            f"{label:<22}{seconds[incremental]:>9.2f} s"
            f"{perf.solves:>9.0f}{perf.flows_touched:>15.0f}"
            f"{perf.mean_flows_per_solve:>13.1f}"
            f"{perf.solver_seconds * 1e3:>13.1f} ms"
        )

    lines = [
        "Fabric microbenchmark — 520 churning flows on 20 disjoint DC "
        "pairs",
        "(arrivals coalesce at t=0; every departure perturbs its "
        "component)",
        "",
        f"{'drive':<22}{'wall':>11}{'solves':>9}{'flows touched':>15}"
        f"{'mean/solve':>13}{'solver':>16}",
        row("global re-solve", False),
        row("incremental", True),
        "",
        f"speedup (wall): {speedup:.1f}x   "
        f"flows-touched ratio: "
        f"{perfs[False].flows_touched / perfs[True].flows_touched:.1f}x",
    ]
    emit("engine_micro.txt", lines)
    assert speedup >= 3.0, f"expected >= 3x, got {speedup:.2f}x"


def test_fabric_jitter_on_idle_links(benchmark):
    """Jitter on links carrying zero flows must not reach the solver."""
    def run():
        sim, topo, fabric = _build_pairs_fabric(40, incremental=True)
        fabric.transfer("P0a0", "P0b0", 50e6)
        sim.run(until=0.1)
        idle = [
            topo.wan_link(f"P{pair}a", f"P{pair}b")
            for pair in range(1, 40)
        ]
        for _tick in range(100):
            for link in idle:
                link.set_capacity(link.capacity * 1.0001)
                fabric.notify_capacity_change(changed_links=[link])
        sim.run()
        return fabric.perf

    perf = benchmark.pedantic(run, rounds=1, iterations=1)
    assert perf.jitter_noops == 39 * 100
    # Only the busy pair's arrival/departure ever solved.
    assert perf.solves <= 4
