"""Fig. 8 — total cross-datacenter traffic per workload and scheme.

Regenerates the paper's Fig. 8 (Sort, TeraSort, PageRank, NaiveBayes):
average cross-datacenter megabytes.  Following the paper's caption, the
Centralized bar shows "the cross-region traffic to aggregate all data
into the centralized datacenter".

Expected shape:
* AggShuffle needs (much) less traffic than Spark everywhere except
  TeraSort (16-90 % less in the paper; 91.3 % for PageRank);
* TeraSort is the anomaly: the bloating pre-shuffle map makes the
  pushed dataset larger than the raw input, so Centralized needs the
  least traffic of the three (§V-B / §V-C).
"""

from benchmarks.matrix_cache import emit, get_matrix
from repro.experiments.figures import fig8_cross_dc_traffic

_SCHEMES = ("Spark", "Centralized", "AggShuffle")
_WORKLOADS = ("Sort", "TeraSort", "PageRank", "NaiveBayes")


def _render(figure) -> list:
    lines = [
        "Fig. 8 — cross-datacenter traffic (MB, mean over runs)",
        f"{'workload':<12}" + "".join(f"{s:>14}" for s in _SCHEMES),
    ]
    for workload in _WORKLOADS:
        if workload not in figure:
            continue
        cells = [figure[workload].get(s, float('nan')) for s in _SCHEMES]
        lines.append(
            f"{workload:<12}" + "".join(f"{c:14.1f}" for c in cells)
        )
    return lines


def test_fig8_cross_datacenter_traffic(benchmark):
    figure = benchmark.pedantic(
        lambda: fig8_cross_dc_traffic(get_matrix()),
        rounds=1,
        iterations=1,
    )
    emit("fig8_traffic.txt", _render(figure))

    for workload, by_scheme in figure.items():
        if workload == "TeraSort":
            # The anomaly: Centralized ships raw input, the least bytes.
            assert by_scheme["Centralized"] < by_scheme["Spark"]
            assert by_scheme["Centralized"] < by_scheme["AggShuffle"]
        else:
            # Eq. (2): pushed volume is the minimum any fetch placement
            # can reach, so AggShuffle is never above Spark; equality
            # happens when the baseline's reducers all land in the
            # largest datacenter (NaiveBayes does, with this placement).
            assert (
                by_scheme["AggShuffle"] <= by_scheme["Spark"] * (1 + 1e-9)
            ), workload
    # PageRank is the headline: ~90 % reduction in the paper.
    pagerank = figure.get("PageRank")
    if pagerank:
        reduction = 1 - pagerank["AggShuffle"] / pagerank["Spark"]
        assert reduction > 0.75, f"PageRank reduction only {reduction:.0%}"
