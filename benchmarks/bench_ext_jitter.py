"""Extension bench — sensitivity to WAN bandwidth jitter.

§I claims: "with our implementation, the impact of bandwidth and delay
jitters in wide-area networks is minimized, resulting in a lower degree
of performance variations over time."

This bench sweeps the jitter band of the inter-region links and
compares the JCT spread (IQR) of Spark vs AggShuffle on PageRank, the
workload whose many WAN round-trips compound jitter in the baseline.
"""

import dataclasses
import os

from benchmarks.matrix_cache import emit
from repro.config import SimulationConfig
from repro.experiments.runner import ExperimentPlan, run_workload_once
from repro.experiments.schemes import Scheme
from repro.metrics.stats import summarize
from repro.network.jitter import JitterSpec
from repro.network.topology import MBPS
from repro.workloads import PageRank

_BANDS = (
    ("stable 200 Mbps", None),
    ("160-240 Mbps", JitterSpec(low=160 * MBPS, high=240 * MBPS)),
    ("80-300 Mbps", JitterSpec(low=80 * MBPS, high=300 * MBPS)),
    ("40-360 Mbps", JitterSpec(low=40 * MBPS, high=360 * MBPS)),
)


def _spread(scheme: Scheme, jitter, seeds) -> tuple:
    base = dataclasses.replace(SimulationConfig(), jitter=jitter)
    plan = ExperimentPlan(seeds=tuple(seeds), base_config=base)
    durations = [
        run_workload_once(PageRank(), scheme, seed, plan).duration
        for seed in seeds
    ]
    stats = summarize(durations)
    return stats.trimmed, stats.iqr_width


def test_jitter_sensitivity(benchmark):
    seeds = range(max(2, int(os.environ.get("REPRO_SEEDS", "10")) // 2))

    def sweep():
        rows = []
        for label, jitter in _BANDS:
            spark_jct, spark_iqr = _spread(Scheme.SPARK, jitter, seeds)
            agg_jct, agg_iqr = _spread(Scheme.AGGSHUFFLE, jitter, seeds)
            rows.append((label, spark_jct, spark_iqr, agg_jct, agg_iqr))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Extension — PageRank JCT vs WAN jitter band",
        f"{'band':<18}{'Spark JCT':>10}{'Spark IQR':>10}"
        f"{'Agg JCT':>10}{'Agg IQR':>10}",
    ]
    for label, s_jct, s_iqr, a_jct, a_iqr in rows:
        lines.append(
            f"{label:<18}{s_jct:>10.1f}{s_iqr:>10.1f}"
            f"{a_jct:>10.1f}{a_iqr:>10.1f}"
        )
    emit("ext_jitter.txt", lines)

    # Under the widest band the baseline's spread clearly exceeds
    # AggShuffle's (with the fixed-dataset methodology, narrow bands
    # leave both schemes essentially deterministic).
    widest = rows[-1]
    assert widest[4] < widest[2], "AggShuffle should be steadier"
    # And AggShuffle is faster under every band.
    for _label, spark_jct, _si, agg_jct, _ai in rows:
        assert agg_jct < spark_jct
