"""Fig. 9 — stage execution-time breakdown per workload and scheme.

Regenerates the paper's Fig. 9: for every workload and scheme, the
per-stage completion-time summary (trimmed mean with IQR), stages in
submission order.  For the Centralized scheme the first "stage" is the
input-centralisation phase.

Expected shape:
* Centralized is slow in early stages (collecting raw data) and fast in
  late stages;
* AggShuffle finishes both early and late stages quickly, with low
  variance in the late (datacenter-local) stages.
"""

from benchmarks.matrix_cache import emit, get_matrix
from repro.experiments.figures import fig9_stage_breakdown

_SCHEMES = ("Spark", "Centralized", "AggShuffle")


def _render(figure) -> list:
    lines = ["Fig. 9 — stage durations (s), trimmed mean [q25-q75]"]
    for workload in ("WordCount", "Sort", "TeraSort", "PageRank", "NaiveBayes"):
        if workload not in figure:
            continue
        lines.append(f"\n{workload}")
        for scheme in _SCHEMES:
            stages = figure[workload].get(scheme, [])
            cells = " | ".join(
                f"s{i}: {s.trimmed:7.1f} [{s.q25:6.1f}-{s.q75:6.1f}]"
                for i, s in enumerate(stages)
            )
            lines.append(f"  {scheme:<12} {cells}")
    return lines


def test_fig9_stage_breakdown(benchmark):
    figure = benchmark.pedantic(
        lambda: fig9_stage_breakdown(get_matrix()),
        rounds=1,
        iterations=1,
    )
    emit("fig9_stages.txt", _render(figure))

    for workload, by_scheme in figure.items():
        # Every scheme reports at least two stages per workload
        # (Centralized adds its centralize phase on top).
        for scheme, stages in by_scheme.items():
            assert len(stages) >= 2, (workload, scheme)
        # The Centralized early phase (centralize-input) is its longest
        # or near-longest early stage for big-input workloads.
        if workload in ("WordCount", "TeraSort"):
            centralized = by_scheme["Centralized"]
            assert centralized[0].trimmed > 0
