"""Eq. (1)/(2) — the analytical model as a microbenchmark.

Checks that the engine's aggregation decision agrees with the §III-B
model on random shuffle-input distributions, and benchmarks the
progressive-filling fair-share solver that every transfer goes through.
"""

import random

from benchmarks.matrix_cache import emit
from repro.core.analysis import (
    cross_dc_traffic_lower_bound,
    optimal_reducer_datacenter,
    total_fetch_volume,
)
from repro.network.fair_share import max_min_fair_rates


def _random_sizes(rng, num_dcs):
    return {f"dc{i}": rng.uniform(0, 1000.0) for i in range(num_dcs)}


def test_eq2_bound_matches_optimal_placement(benchmark):
    rng = random.Random(0)

    def check_many():
        worst_gap = 0.0
        for _ in range(500):
            sizes = _random_sizes(rng, rng.randint(1, 6))
            best = optimal_reducer_datacenter(sizes)
            achieved = total_fetch_volume(sizes, [best] * 8)
            bound = cross_dc_traffic_lower_bound(sizes)
            worst_gap = max(worst_gap, abs(achieved - bound))
        return worst_gap

    worst_gap = benchmark(check_many)
    emit(
        "eq_model.txt",
        [
            "Eq. (1)/(2) — optimal aggregation achieves the S - s1 bound",
            f"worst |achieved - bound| over 500 random instances: "
            f"{worst_gap:.3e} bytes",
        ],
    )
    assert worst_gap < 1e-6


def test_fair_share_solver_throughput(benchmark):
    """Progressive filling over a realistic flow population."""
    rng = random.Random(1)
    links = {f"l{i}": rng.uniform(1e6, 1e9) for i in range(60)}
    link_names = sorted(links)
    flows = {
        f"f{i}": rng.sample(link_names, rng.randint(2, 5))
        for i in range(200)
    }

    rates = benchmark(lambda: max_min_fair_rates(flows, links))
    assert len(rates) == 200
